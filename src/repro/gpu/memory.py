"""The weak memory subsystem.

Operational model (see DESIGN.md Sec. 4 for the rationale):

* Global memory is a flat word-addressed store.
* Each SM owns a bounded store buffer.  A store enters its SM's buffer
  and becomes visible to other SMs only when it *drains*.  Threads on the
  same SM see buffered stores early (forwarding), which keeps intra-block
  communication strong — matching real GPUs, where the paper found only
  *inter*-block idioms at risk.
* Entries to the same channel (and a fortiori the same address) drain in
  FIFO order; entries to different channels may swap with a probability
  that grows with stress pressure on the older entry's channel.  This is
  the MP-shaped write reordering.  Swaps are additionally gated on the
  two addresses being at least ``store_store_min_distance`` words apart
  (write-combining within a cache line), which is why the paper sees no
  weak behaviour for distances below the critical patch size.
* A load first forwards from its own SM's buffer.  If the loading thread
  itself has unrelated stores buffered, the load normally waits for them
  (program order); with a pressure-dependent probability it *bypasses*
  them instead — the SB-shaped reordering.
* Deferred loads (issue/resolve split, used by the litmus runner the way
  real litmus tests only inspect registers at the end) may resolve late,
  after program-order-later stores have drained — the LB-shaped
  reordering.
* Atomic read-modify-writes act on global memory immediately and are
  **not** fences: program-order-earlier buffered stores can still be
  pending when the RMW becomes visible.  This reproduces, e.g., the
  cbe-dot spinlock bug of the paper's Fig. 1.
* A device fence drains the issuing thread's stores and resolves its
  deferred loads, charging the chip's fence stall cost.

All probabilistic decisions flow from the chip profile and the stress
field; on the ``sc-ref`` chip every probability is zero and the subsystem
is sequentially consistent.

Hot-path notes (see docs/ARCHITECTURE.md "Hot path & determinism"):

* The per-channel probability tables are pure functions of
  ``(chip, pressure vector, turbulence, weak_scale)`` and are memoized
  in a module-level LRU — a tuning grid or campaign revisits the same
  handful of pressure shapes millions of times.  Cached tables are
  plain Python lists (scalar indexing is ~4x cheaper than numpy
  element access) and are shared between instances; never mutate them.
* Buffer membership is mirrored in per-``(sm, thread)``,
  per-``(sm, thread, channel)`` and per-``(sm, addr)`` counters so the
  common cases of ``read``/``issue_load``/``thread_pending`` skip the
  buffer scan entirely, and every former ``buf.remove(entry)``
  quadratic pattern is a single-pass rewrite.
* :meth:`MemorySystem.reset` restores the pristine post-construction
  state so one instance can serve an entire batch of executions.

None of this changes a single random draw: every decision consumes the
same generator stream, in the same order, as the original scan-based
implementation (the golden-statistics tests pin this).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable
from functools import lru_cache

import numpy as np

from ..chips.profile import HardwareProfile
from ..errors import InvalidAccessError
from ..rng import BufferedRNG
from .events import STALL
from .pressure import StressField, lru_get

#: Probability ceiling for any single reordering decision.
_P_MAX = 0.45
#: Baseline drain latency in ticks (natively a store drains almost
#: immediately once eligible — native weak behaviours are rare).
_BASE_LATENCY = 0.05
#: Stores younger than this many ticks are not eligible to drain.
_MIN_AGE = 1
#: Base per-tick resolution probability of a slow (delayed) load;
#: pressure on the load's channel slows resolution further.
_SLOW_RESOLVE_P = 0.25
#: SB-shaped bypass is easier than store-store swaps on real silicon
#: (plain store buffering); boost relative to the chip's reorder gain.
_BYPASS_BOOST = 2.2
#: Entries the drain loop may commit per SM per tick.
_DRAIN_WIDTH = 8

#: Drain-probability multiplier for a parked store.  A store that has
#: been overtaken (by a cross-channel swap or an atomic bypass) was
#: sitting in a congested queue; it keeps draining slowly, which is what
#: gives consumers a realistic window to observe the stale value.
_PARKED_DRAIN = 0.2

# Store-buffer entry field indices (plain lists for speed).
_E_THREAD = 0
_E_ADDR = 1
_E_VAL = 2
_E_CH = 3
_E_TICK = 4
_E_PARKED = 5

#: LRU of precomputed probability tables, keyed by
#: ``(chip cache token, pressure bytes, turbulence, weak_scale)``.
_TABLE_CACHE: OrderedDict[tuple, tuple] = OrderedDict()
_TABLE_CACHE_MAX = 512


@lru_cache(maxsize=64)
def _bleed_matrix(n: int) -> np.ndarray:
    """Ring-topology pressure bleed between channels (shared arbitration:
    stress on a channel acts mildly on its neighbours, which is what
    gives the paper's Fig. 3 its patches of *varying* height)."""
    idx = np.arange(n)
    dist = np.abs(idx[:, None] - idx[None, :])
    dist = np.minimum(dist, n - dist)
    bleed = np.where(dist == 0, 1.0, np.where(dist == 1, 0.35, 0.08))
    bleed.setflags(write=False)
    return bleed


def memory_tables(
    profile: HardwareProfile, stress: StressField, weak_scale: float
) -> tuple[list, list, list, list, list]:
    """Per-channel probability tables for one (chip, field, scale).

    Returns ``(drain_p, swap_p, bypass_p, slow_p, resolve_p)`` as plain
    lists (``swap_p`` is a list of rows).  The tables are deterministic
    functions of the key, so memoization is invisible to the statistics;
    they are shared between memory systems and must not be mutated.
    """
    key = (
        profile.cache_token,
        stress.press_bytes,
        stress.turbulence,
        weak_scale,
    )
    return lru_get(
        _TABLE_CACHE,
        key,
        lambda: _compute_tables(profile, stress, weak_scale),
        _TABLE_CACHE_MAX,
    )


def _compute_tables(
    profile: HardwareProfile, stress: StressField, weak_scale: float
) -> tuple[list, list, list, list, list]:
    prof, scale = profile, weak_scale
    n = prof.n_channels
    turb = stress.turbulence
    sens = prof.sensitivity
    press = stress.press

    # Effective pressure per channel: stress on a channel acts with
    # that channel's sensitivity and bleeds onto neighbouring channels.
    eff = _bleed_matrix(n) @ (press * sens)

    # Drain probability per tick for a store on channel ch.  The
    # slowdown, like the reordering probabilities, works through the
    # chip's channel sensitivity and the turbulence of the field —
    # diffuse or uniform stress barely delays any one line, which is
    # why rand-str and cache-str are weak (paper Tab. 5).
    drain_p = 1.0 / (
        1.0
        + _BASE_LATENCY
        + prof.latency_gain * press * sens * turb * scale
    )
    # Cross-channel store-store swap probability matrix
    # [older channel, younger channel].
    pair = eff[:, None] + prof.cross_channel_weight * eff[None, :]
    swap = prof.reorder_base + prof.reorder_gain * pair * turb
    swap_p = np.minimum(swap * scale + prof.store_swap_leak, _P_MAX)
    # Store-load bypass probability (SB) keyed by the *store*'s channel.
    bypass = (
        prof.reorder_base
        + _BYPASS_BOOST * prof.reorder_gain * eff * turb
    )
    bypass_p = np.minimum(bypass * scale, _P_MAX)
    # Slow-load probability (LB) keyed by the load's channel.
    slow = prof.load_delay_base + prof.load_delay_gain * eff * turb
    slow_p = np.minimum(slow * scale, _P_MAX)
    # Slow loads resolve more slowly on pressured channels.
    resolve_p = _SLOW_RESOLVE_P / (
        1.0 + prof.latency_gain * press * sens * turb * scale
    )
    assert drain_p.shape == (n,)

    return (
        drain_p.tolist(),
        swap_p.tolist(),
        bypass_p.tolist(),
        slow_p.tolist(),
        resolve_p.tolist(),
    )


class DeferredLoad:
    """A load that has been issued but whose value may resolve later.

    ``block_mode`` carries the program-order constraint the load picked
    up at issue time:

    * ``None`` — unconstrained (resolves immediately, or randomly late
      when ``slow`` — the LB-shaped delay);
    * ``("channel", ch)`` — must wait for the issuing thread's pending
      stores on channel ``ch`` (same-channel FIFO);
    * ``("stores", None)`` — must wait for all of the issuing thread's
      pending stores (a failed SB bypass);
    * ``("load", handle)`` — must wait for an earlier load by the same
      thread on the same channel (loads within a channel stay ordered,
      so MP-shaped read reordering needs distinct channels).
    """

    __slots__ = (
        "thread",
        "sm",
        "addr",
        "ch",
        "slow",
        "block_mode",
        "resolved",
        "value",
    )

    def __init__(
        self,
        thread: int,
        sm: int,
        addr: int,
        ch: int,
        slow: bool,
        block_mode: tuple | None = None,
    ):
        self.thread = thread
        self.sm = sm
        self.addr = addr
        self.ch = ch
        self.slow = slow
        self.block_mode = block_mode
        self.resolved = False
        self.value: object = None


class MemorySystem:
    """Weak global memory shared by all SMs of one simulated chip."""

    def __init__(
        self,
        profile: HardwareProfile,
        stress: StressField | None = None,
        rng: np.random.Generator | None = None,
        weak_scale: float = 1.0,
    ):
        self.profile = profile
        self.stress = stress if stress is not None else StressField.zero(profile)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Hot paths draw scalars straight from a BufferedRNG's pre-draw
        # block (see repro.rng) instead of through a method call.
        self._fast_rng = self.rng if isinstance(self.rng, BufferedRNG) else None
        self.weak_scale = weak_scale

        self.mem: dict[int, object] = {}
        self.sm_buffers: list[list[list]] = [[] for _ in range(profile.n_sms)]
        self.tick = 0
        self._fencing: set[int] = set()
        self._deferred: list[DeferredLoad] = []

        # Buffer-membership mirrors (see module docstring): total count,
        # the set of SMs with non-empty buffers, and per-(sm, thread) /
        # (sm, thread, channel) / (sm, addr) entry counts.  These turn
        # the common read/issue/pending checks into dict probes and let
        # the drain pump skip empty SMs without scanning all of them.
        self._n_buffered = 0
        self._nonempty: set[int] = set()
        self._by_thread: dict[tuple[int, int], int] = {}
        self._by_thread_ch: dict[tuple[int, int, int], int] = {}
        self._by_addr: dict[tuple[int, int], int] = {}

        # Hot-path constants hoisted off the profile.
        self._buf_cap = profile.store_buffer_capacity * 8
        self._ch_shift = profile.channel_shift
        self._ch_mask = profile.channel_mask

        # Statistics (consumed by tests and the cost model).
        self.n_drains = 0
        self.n_swaps = 0
        self.n_bypasses = 0
        self.n_slow_loads = 0

        self._precompute()

    # ------------------------------------------------------------------
    # precomputed per-channel probabilities (the stress field is static)
    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        (
            self.drain_p,
            self.swap_p,
            self.bypass_p,
            self.slow_p,
            self.resolve_p,
        ) = memory_tables(self.profile, self.stress, self.weak_scale)

    def set_stress(self, stress: StressField) -> None:
        """Swap the stress field (e.g. once a scratchpad is allocated)."""
        self.stress = stress
        self._precompute()

    def reset(
        self,
        stress: StressField | None = None,
        rng: np.random.Generator | None = None,
        weak_scale: float | None = None,
    ) -> None:
        """Return to the pristine post-construction state.

        Optionally swaps the stress field, generator and weak scale so
        one instance can serve a whole batch of executions — the
        execution loop's allocation cost collapses to a few ``clear()``
        calls plus (usually cached) table lookups.
        """
        self.mem.clear()
        if self._n_buffered:
            for sm in self._nonempty:
                self.sm_buffers[sm].clear()
            self._nonempty.clear()
            self._by_thread.clear()
            self._by_thread_ch.clear()
            self._by_addr.clear()
            self._n_buffered = 0
        self.tick = 0
        if self._fencing:
            self._fencing.clear()
        if self._deferred:
            self._deferred = []
        self.n_drains = 0
        self.n_swaps = 0
        self.n_bypasses = 0
        self.n_slow_loads = 0
        if rng is not None:
            self.rng = rng
            self._fast_rng = rng if isinstance(rng, BufferedRNG) else None
        stale = False
        if weak_scale is not None and weak_scale != self.weak_scale:
            self.weak_scale = weak_scale
            stale = True
        if stress is not None and stress is not self.stress:
            self.stress = stress
            stale = True
        if stale:
            self._precompute()

    # ------------------------------------------------------------------
    # buffer-membership bookkeeping
    # ------------------------------------------------------------------
    def _note_removed(self, sm: int, entry: list) -> None:
        self._n_buffered -= 1
        key = (sm, entry[_E_THREAD])
        n = self._by_thread[key] - 1
        if n:
            self._by_thread[key] = n
        else:
            del self._by_thread[key]
        key = (sm, entry[_E_THREAD], entry[_E_CH])
        n = self._by_thread_ch[key] - 1
        if n:
            self._by_thread_ch[key] = n
        else:
            del self._by_thread_ch[key]
        key = (sm, entry[_E_ADDR])
        n = self._by_addr[key] - 1
        if n:
            self._by_addr[key] = n
        else:
            del self._by_addr[key]

    def _channel(self, addr: int) -> int:
        shift = self._ch_shift
        if shift is not None:
            return (addr >> shift) & self._ch_mask
        return self.profile.channel(addr)

    # ------------------------------------------------------------------
    # thread-facing operations
    # ------------------------------------------------------------------
    def read(
        self, sm: int, thread: int, addr: int, op_state: dict | None = None
    ) -> object:
        """Blocking load.  Returns the value, or ``STALL`` to retry.

        ``op_state`` is per-operation scratch owned by the engine; it
        makes the bypass decision sticky across retries so that a stalled
        load does not re-roll the dice every tick.
        """
        buf = self.sm_buffers[sm]
        if buf:
            if self._by_addr.get((sm, addr)):
                for entry in reversed(buf):
                    if entry[_E_ADDR] == addr:
                        return entry[_E_VAL]  # SM-local forwarding
            if self._by_thread.get((sm, thread)):
                shift = self._ch_shift
                if shift is not None:
                    load_ch = (addr >> shift) & self._ch_mask
                else:
                    load_ch = self.profile.channel(addr)
                if self._by_thread_ch.get((sm, thread, load_ch)):
                    # Same-channel FIFO: the load waits for the store to
                    # drain.  This is why SB-shaped weak behaviour needs
                    # the two communication locations in different
                    # patches.
                    return STALL
                if op_state is not None and op_state.get("waiting"):
                    return STALL
                for entry in reversed(buf):
                    if entry[_E_THREAD] == thread:
                        own_pending = entry
                        break
                p = self.bypass_p[own_pending[_E_CH]]
                fr = self._fast_rng
                if fr is not None and fr._i < fr._n:
                    i = fr._i
                    fr._i = i + 1
                    roll = fr._dbuf[i]
                else:
                    roll = self.rng.random()
                if roll >= p:
                    if op_state is not None:
                        op_state["waiting"] = True
                    return STALL
                self.n_bypasses += 1
        return self.mem.get(addr, 0)

    def write(self, sm: int, thread: int, addr: int, val: object) -> bool:
        """Buffered store.  Returns False when the buffer is full."""
        buf = self.sm_buffers[sm]
        if len(buf) >= self._buf_cap:
            return False
        shift = self._ch_shift
        if shift is not None:
            ch = (addr >> shift) & self._ch_mask
        else:
            ch = self.profile.channel(addr)
        # Program order, same address: an earlier deferred load by this
        # thread must see the pre-store value.
        if self._deferred:
            self._resolve_matching(thread, addr)
        entry = [thread, addr, val, ch, self.tick, False]
        buf.append(entry)
        # _note_append, inlined (hottest bookkeeping site).
        self._n_buffered += 1
        self._nonempty.add(sm)
        key = (sm, thread)
        by_thread = self._by_thread
        by_thread[key] = by_thread.get(key, 0) + 1
        key = (sm, thread, ch)
        by_ch = self._by_thread_ch
        by_ch[key] = by_ch.get(key, 0) + 1
        key = (sm, addr)
        by_addr = self._by_addr
        by_addr[key] = by_addr.get(key, 0) + 1
        return True

    def rmw(
        self,
        sm: int,
        thread: int,
        addr: int,
        fn: Callable[[object], object],
        op_state: dict | None = None,
    ) -> object:
        """Atomic read-modify-write.  Returns the old value or ``STALL``.

        Atomics act on global memory through the atomic pipeline, so
        they are *not* ordered against the issuing thread's buffered
        stores by the channel FIFO; but neither are they fences.  The
        atomic normally waits for the thread's earlier stores to drain;
        with a pressure-dependent probability it overtakes them instead
        — this is the store/atomic reordering behind the paper's
        unlock-before-critical-store bugs (Fig. 1) and the stale-partial
        bugs of sdk-red and ct-octree.
        """
        buf = self.sm_buffers[sm]
        own_pending = None
        if self._by_thread.get((sm, thread)):
            for entry in reversed(buf):
                if entry[_E_THREAD] == thread and entry[_E_ADDR] != addr:
                    own_pending = entry
                    break
        if own_pending is not None:
            if op_state is not None and op_state.get("waiting"):
                return STALL
            if self.rng.random() >= self.bypass_p[own_pending[_E_CH]]:
                if op_state is not None:
                    op_state["waiting"] = True
                return STALL
            self.n_bypasses += 1
            # The atomic jumped this thread's queued stores; they stay
            # parked in the congested write queue.
            for entry in buf:
                if entry[_E_THREAD] == thread:
                    entry[_E_PARKED] = True
        # Coherence: same-address buffered stores on this SM are ordered
        # before the atomic; commit them now (in order).
        if self._by_addr.get((sm, addr)):
            same = []
            keep = []
            for entry in buf:
                if entry[_E_ADDR] == addr:
                    same.append(entry)
                else:
                    keep.append(entry)
            buf[:] = keep
            for entry in same:
                self._note_removed(sm, entry)
                self._commit(entry)
            if not buf:
                self._nonempty.discard(sm)
        old = self.mem.get(addr, 0)
        self.mem[addr] = fn(old)
        return old

    def issue_load(self, sm: int, thread: int, addr: int) -> DeferredLoad:
        """Issue a deferred load; resolve time depends on pressure.

        Applies the same program-order constraints as a blocking
        :meth:`read` — forwarding, same-channel FIFO, and the SB bypass
        roll against the thread's own buffered stores — but without
        blocking the caller: constrained loads park on the deferred list
        and resolve when their blocking stores drain.
        """
        shift = self._ch_shift
        if shift is not None:
            ch = (addr >> shift) & self._ch_mask
        else:
            ch = self.profile.channel(addr)
        buf = self.sm_buffers[sm]
        if self._deferred:
            # Loads within a channel stay ordered, as do loads closer
            # than the chip's reorder distance threshold (on Maxwell
            # this is what pushes observable MP read reordering out to
            # d >= 256): chain behind an earlier unresolved load by this
            # thread.
            min_dist = self.profile.store_store_min_distance
            for earlier in self._deferred:
                if (
                    not earlier.resolved
                    and earlier.thread == thread
                    and (
                        earlier.ch == ch
                        or abs(earlier.addr - addr) < min_dist
                    )
                ):
                    handle = DeferredLoad(
                        thread, sm, addr, ch, slow=False,
                        block_mode=("load", earlier),
                    )
                    self._deferred.append(handle)
                    return handle
        own_pending = None
        if buf:
            if self._by_addr.get((sm, addr)):
                for entry in reversed(buf):
                    if entry[_E_ADDR] == addr:
                        handle = DeferredLoad(thread, sm, addr, ch, slow=False)
                        handle.value = entry[_E_VAL]
                        handle.resolved = True
                        return handle
            if self._by_thread.get((sm, thread)):
                if self._by_thread_ch.get((sm, thread, ch)):
                    handle = DeferredLoad(
                        thread, sm, addr, ch, slow=False,
                        block_mode=("channel", ch),
                    )
                    self._deferred.append(handle)
                    return handle
                for entry in reversed(buf):
                    if entry[_E_THREAD] == thread:
                        own_pending = entry
                        break
        fr = self._fast_rng
        if own_pending is not None:
            if fr is not None and fr._i < fr._n:
                i = fr._i
                fr._i = i + 1
                roll = fr._dbuf[i]
            else:
                roll = self.rng.random()
            if roll >= self.bypass_p[own_pending[_E_CH]]:
                handle = DeferredLoad(
                    thread, sm, addr, ch, slow=False,
                    block_mode=("stores", None),
                )
                self._deferred.append(handle)
                return handle
            self.n_bypasses += 1
        if fr is not None and fr._i < fr._n:
            i = fr._i
            fr._i = i + 1
            roll = fr._dbuf[i]
        else:
            roll = self.rng.random()
        slow = roll < self.slow_p[ch]
        handle = DeferredLoad(thread, sm, addr, ch, slow)
        if slow:
            self.n_slow_loads += 1
            self._deferred.append(handle)
        else:
            handle.value = self.mem.get(addr, 0)
            handle.resolved = True
        return handle

    def poll_load(self, handle: DeferredLoad) -> object:
        """Value of a deferred load, or ``STALL`` if still in flight."""
        if not handle.resolved:
            return STALL
        return handle.value

    # ------------------------------------------------------------------
    # fences
    # ------------------------------------------------------------------
    def thread_pending(self, sm: int, thread: int) -> bool:
        """True when the thread has buffered stores or in-flight loads."""
        if self._by_thread.get((sm, thread)):
            return True
        return any(
            h.thread == thread and not h.resolved for h in self._deferred
        )

    def fence_begin(self, thread: int) -> None:
        """Mark a thread as fencing: its stores get priority FIFO drain.

        The thread's unconstrained slow loads resolve immediately;
        blocked loads resolve naturally once the priority drain clears
        their blocking stores.
        """
        self._fencing.add(thread)
        for handle in self._deferred:
            if handle.thread == thread and handle.block_mode is None:
                self._resolve_pending(handle)
        self._deferred = [h for h in self._deferred if not h.resolved]

    def fence_done(self, sm: int, thread: int) -> bool:
        """True when the fencing thread has no pending stores or loads."""
        if self._by_thread.get((sm, thread)):
            return False
        for handle in self._deferred:
            if handle.thread == thread and not handle.resolved:
                return False
        self._fencing.discard(thread)
        return True

    def drain_thread(self, sm: int, thread: int) -> None:
        """Synchronously drain one thread's stores in order (barriers)."""
        if not self._by_thread.get((sm, thread)):
            return
        buf = self.sm_buffers[sm]
        drained = []
        keep = []
        for entry in buf:
            if entry[_E_THREAD] == thread:
                drained.append(entry)
            else:
                keep.append(entry)
        buf[:] = keep
        for entry in drained:
            self._note_removed(sm, entry)
            self._commit(entry)
        if not buf:
            self._nonempty.discard(sm)

    # ------------------------------------------------------------------
    # the drain pump, called once per engine tick
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one tick: resolve slow loads, drain store buffers."""
        self.tick += 1
        if self._deferred:
            self._step_deferred()
        if self._n_buffered:
            self._step_buffers()

    def _step_buffers(self) -> None:
        nonempty = self._nonempty
        if len(nonempty) == 1:
            for sm in nonempty:
                break
            self._step_buffer(sm, self.sm_buffers[sm])
        else:
            for sm in sorted(nonempty):
                buf = self.sm_buffers[sm]
                if buf:
                    self._step_buffer(sm, buf)

    def drain_until(self, handles, max_ticks: int) -> None:
        """Step until no stores are buffered and all ``handles`` are
        resolved, or ``max_ticks`` elapse.

        Exactly equivalent to the check-then-:meth:`step` loop it
        replaces (same draws, same tick evolution); fusing it here keeps
        the whole drain phase in one frame.
        """
        sm_buffers = self.sm_buffers
        for _ in range(max_ticks):
            if not self._n_buffered:
                for h in handles:
                    if not h.resolved:
                        break
                else:
                    return
            self.tick += 1
            if self._deferred:
                self._step_deferred()
            if self._n_buffered:
                # Single-SM fast path of _step_buffers(), inlined to
                # skip a frame per tick.  Keep the three copies in sync:
                # here, _step_buffers(), and the inlined step in
                # litmus/runner._one_round.
                nonempty = self._nonempty
                if len(nonempty) == 1:
                    for sm in nonempty:
                        break
                    self._step_buffer(sm, sm_buffers[sm])
                else:
                    self._step_buffers()

    def _step_deferred(self) -> None:
        still = []
        resolve_p = self.resolve_p
        rng = self.rng
        fr = self._fast_rng
        for handle in self._deferred:
            if handle.resolved:
                continue
            if handle.block_mode is not None:
                if self._unblocked(handle):
                    self._resolve_pending(handle)
                else:
                    still.append(handle)
            else:
                if fr is not None and fr._i < fr._n:
                    i = fr._i
                    fr._i = i + 1
                    roll = fr._dbuf[i]
                else:
                    roll = rng.random()
                if roll < resolve_p[handle.ch]:
                    handle.value = self.mem.get(handle.addr, 0)
                    handle.resolved = True
                else:
                    still.append(handle)
        self._deferred = still

    def _unblocked(self, handle: DeferredLoad) -> bool:
        mode, arg = handle.block_mode
        if mode == "load":
            return arg.resolved
        if mode == "stores":
            return not self._by_thread.get((handle.sm, handle.thread))
        return not self._by_thread_ch.get((handle.sm, handle.thread, arg))

    def _step_buffer(self, sm: int, buf: list[list]) -> None:
        rng = self.rng
        fencing = self._fencing
        if fencing:
            # Priority FIFO drain for fencing threads (single pass).
            drained = [e for e in buf if e[_E_THREAD] in fencing]
            if drained:
                buf[:] = [e for e in buf if e[_E_THREAD] not in fencing]
                for entry in drained:
                    self._note_removed(sm, entry)
                    self._commit(entry)
            if not buf:
                self._nonempty.discard(sm)
                return
        horizon = self.tick - _MIN_AGE
        committed = 0
        drain_p = self.drain_p
        fr = self._fast_rng
        while buf and committed < _DRAIN_WIDTH:
            head = buf[0]
            if head[_E_TICK] > horizon:
                break  # head too young; younger entries behind it too
            idx = 0
            if len(buf) > 1 and buf[1][_E_TICK] <= horizon:
                # (the swap scan breaks immediately on a too-young first
                # candidate without drawing, so the gate is draw-free)
                idx = self._maybe_swap(buf, horizon, rng)
            if idx != 0:
                # A successful swap *is* the early out-of-order commit;
                # the overtaken head is parked in the congested queue.
                entry = buf.pop(idx)
                buf[0][_E_PARKED] = True
                self._note_removed(sm, entry)
                self._commit(entry)
                committed += 1
                continue
            p = drain_p[head[_E_CH]]
            if head[_E_PARKED]:
                p *= _PARKED_DRAIN
            if fr is not None and fr._i < fr._n:
                i = fr._i
                fr._i = i + 1
                roll = fr._dbuf[i]
            else:
                roll = rng.random()
            if roll < p:
                del buf[0]
                # _note_removed + _commit, inlined (hottest path).
                self._n_buffered -= 1
                thread = head[_E_THREAD]
                addr = head[_E_ADDR]
                ch = head[_E_CH]
                counts = self._by_thread
                key = (sm, thread)
                n = counts[key] - 1
                if n:
                    counts[key] = n
                else:
                    del counts[key]
                counts = self._by_thread_ch
                key = (sm, thread, ch)
                n = counts[key] - 1
                if n:
                    counts[key] = n
                else:
                    del counts[key]
                counts = self._by_addr
                key = (sm, addr)
                n = counts[key] - 1
                if n:
                    counts[key] = n
                else:
                    del counts[key]
                if self._deferred:
                    self._resolve_matching(thread, addr, ch)
                self.mem[addr] = head[_E_VAL]
                self.n_drains += 1
                committed += 1
            else:
                break
        if not buf:
            self._nonempty.discard(sm)

    def _maybe_swap(
        self, buf: list[list], horizon: int, rng
    ) -> int:
        """Index of the entry to drain: 0, or a younger entry that is
        allowed to overtake the head."""
        head = buf[0]
        profile = self.profile
        min_dist = profile.store_store_min_distance
        fr = self._fast_rng
        for j in range(1, len(buf)):
            cand = buf[j]
            if cand[_E_TICK] > horizon:
                break
            if cand[_E_CH] == head[_E_CH]:
                leak = profile.store_swap_leak
                if leak <= 0.0:
                    continue
                # Maxwell write-combining leak: rare same-channel swap.
                if fr is not None and fr._i < fr._n:
                    i = fr._i
                    fr._i = i + 1
                    roll = fr._dbuf[i]
                else:
                    roll = rng.random()
                if roll < leak:
                    if self._oldest_for_addr(buf, j):
                        self.n_swaps += 1
                        return j
                continue
            if abs(cand[_E_ADDR] - head[_E_ADDR]) < min_dist:
                continue
            if fr is not None and fr._i < fr._n:
                i = fr._i
                fr._i = i + 1
                roll = fr._dbuf[i]
            else:
                roll = rng.random()
            if roll < self.swap_p[head[_E_CH]][cand[_E_CH]]:
                if self._oldest_for_addr(buf, j):
                    self.n_swaps += 1
                    return j
            return 0
        return 0

    @staticmethod
    def _oldest_for_addr(buf: list[list], j: int) -> bool:
        """Coherence guard: ``buf[j]`` may only overtake if no older entry
        targets the same address."""
        addr = buf[j][_E_ADDR]
        return all(buf[i][_E_ADDR] != addr for i in range(j))

    # ------------------------------------------------------------------
    # commit / resolve internals
    # ------------------------------------------------------------------
    def _commit(self, entry: list) -> None:
        # Program order within a channel: this thread's earlier deferred
        # loads of this address *or channel* must resolve before the
        # store lands (LB-shaped reordering needs distinct channels).
        if self._deferred:
            self._resolve_matching(
                entry[_E_THREAD], entry[_E_ADDR], entry[_E_CH]
            )
        self.mem[entry[_E_ADDR]] = entry[_E_VAL]
        self.n_drains += 1

    def _resolve_matching(
        self, thread: int, addr: int, ch: int | None = None
    ) -> None:
        if not self._deferred:
            return
        for handle in self._deferred:
            if (
                not handle.resolved
                and handle.thread == thread
                and (handle.addr == addr or (ch is not None and handle.ch == ch))
            ):
                self._resolve_pending(handle)
        self._deferred = [h for h in self._deferred if not h.resolved]

    def _resolve_pending(self, handle: DeferredLoad) -> None:
        handle.value = self.mem.get(handle.addr, 0)
        handle.resolved = True

    # ------------------------------------------------------------------
    # host-side access (kernel launch boundaries; no weak effects)
    # ------------------------------------------------------------------
    def host_read(self, buf, idx: int) -> object:
        """Read committed memory from the host (after a flush)."""
        return self.mem.get(buf.addr(idx), 0)

    def host_write(self, buf, idx: int, val: object) -> None:
        """Initialise memory from the host before a launch."""
        self.mem[buf.addr(idx)] = val

    def host_fill(self, buf, values) -> None:
        """Bulk host initialisation of a buffer (single dict update)."""
        values = list(values)
        if len(values) > buf.size:
            raise InvalidAccessError(
                f"host_fill of {len(values)} words overflows buffer "
                f"{buf.name!r} of size {buf.size}"
            )
        base = buf.base
        self.mem.update(zip(range(base, base + len(values)), values))

    # ------------------------------------------------------------------
    # introspection helpers (tests, debugging)
    # ------------------------------------------------------------------
    def pending_stores(self) -> int:
        """Total stores currently buffered across all SMs."""
        return self._n_buffered

    def flush_all(self) -> None:
        """Commit every buffered store in FIFO order (end of kernel)."""
        if self._n_buffered:
            for sm in sorted(self._nonempty):
                buf = self.sm_buffers[sm]
                for entry in buf:
                    self._commit(entry)
                buf.clear()
            self._nonempty.clear()
            self._by_thread.clear()
            self._by_thread_ch.clear()
            self._by_addr.clear()
            self._n_buffered = 0
        if self._deferred:
            for handle in self._deferred:
                if not handle.resolved:
                    self._resolve_pending(handle)
            self._deferred = []
