"""Simulated GPU: SIMT execution on top of a weak memory subsystem.

The simulator has two halves:

* an execution engine (:mod:`repro.gpu.engine`) that runs CUDA-style
  kernels — Python generator coroutines grouped into warps, blocks and a
  grid — under a randomised warp scheduler; and
* a memory subsystem (:mod:`repro.gpu.memory`) with per-SM store buffers
  that drain to global memory out of order across channels, producing the
  weak behaviours (MP / LB / SB shaped) the paper studies.  Reordering
  probabilities respond to the memory *pressure* exerted by stressing
  threads (:mod:`repro.gpu.pressure`).

Kernels observe weak memory exactly the way real CUDA code does: through
stale loads, lost updates and reordered publishes; fences
(``ctx.fence_device()``) restore ordering at a modelled cost in stall
cycles that feeds the Sec. 6 runtime/energy study.
"""

from .addresses import AddressSpace, Buffer
from .engine import Engine, ExecutionResult, Outcome
from .kernel import Kernel, LaunchConfig
from .memory import MemorySystem
from .pressure import StressField
from .thread import ThreadContext

__all__ = [
    "AddressSpace",
    "Buffer",
    "Engine",
    "ExecutionResult",
    "Outcome",
    "Kernel",
    "LaunchConfig",
    "MemorySystem",
    "StressField",
    "ThreadContext",
]
