"""Grid construction: threads -> warps -> blocks -> SMs.

Block-to-SM assignment is round-robin by default; under thread
randomisation (paper Sec. 3.5) the assignment is shuffled, which changes
which blocks share a store buffer and how their warps interleave — while
necessarily respecting warp and block membership, exactly the constraint
the paper imposes to avoid barrier divergence and broken intra-warp
synchronisation.
"""

from __future__ import annotations

import os

import numpy as np

from .block import Block
from .kernel import Kernel, LaunchConfig
from .thread import ThreadContext
from .warp import SimThread, Warp


class Grid:
    """All blocks of one kernel launch.

    ``n_live`` counts threads whose coroutines have not finished; the
    engine decrements it exactly once per thread (when ``_advance`` sees
    ``StopIteration``), which makes the per-tick termination check O(1)
    instead of a scan over every thread.
    """

    __slots__ = ("blocks", "threads", "warps", "n_live")

    def __init__(self, blocks: list[Block]):
        self.blocks = blocks
        self.threads = [t for b in blocks for t in b.threads]
        self.warps = [w for b in blocks for w in b.warps]
        for index, warp in enumerate(self.warps):
            warp.index = index
        self.n_live = len(self.threads)

    @property
    def finished(self) -> bool:
        return self.n_live == 0

    def live_threads(self) -> int:
        """Number of unfinished threads (the maintained counter).

        Under pytest the counter is cross-checked against the O(n) scan
        it replaced, so any missed or double-counted transition in the
        engine fails loudly instead of silently skewing termination.
        """
        n = self.n_live
        if os.environ.get("PYTEST_CURRENT_TEST"):
            scan = sum(1 for t in self.threads if not t.done)
            assert n == scan, (
                f"live-thread counter {n} disagrees with done-flag scan "
                f"{scan}"
            )
        return n


def build_grid(
    kernel: Kernel,
    config: LaunchConfig,
    n_sms: int,
    fence_sites: frozenset[str] = frozenset(),
    randomise_rng: np.random.Generator | None = None,
) -> Grid:
    """Instantiate every thread coroutine and group into warps/blocks.

    Each thread's SM is stored on the thread itself (blocks are pinned
    to SMs for the whole launch), so the engine needs no per-run
    key-to-SM mapping.
    """
    sm_of_block = list(range(config.grid_dim))
    if randomise_rng is not None:
        randomise_rng.shuffle(sm_of_block)
    blocks = []
    key = 0
    for block_id in range(config.grid_dim):
        sm = sm_of_block[block_id] % n_sms
        warps = []
        for warp_id in range(config.warps_per_block):
            lo = warp_id * config.warp_size
            hi = min(lo + config.warp_size, config.block_dim)
            threads = []
            for tid in range(lo, hi):
                ctx = ThreadContext(
                    tid=tid,
                    block_id=block_id,
                    block_dim=config.block_dim,
                    grid_dim=config.grid_dim,
                    warp_size=config.warp_size,
                    fence_sites=fence_sites,
                )
                threads.append(
                    SimThread(key, ctx, kernel.instantiate(ctx), sm=sm)
                )
                key += 1
            warps.append(Warp(block_id, warp_id, threads))
        blocks.append(Block(block_id, sm, warps))
    return Grid(blocks)
