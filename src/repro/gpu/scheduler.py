"""Warp scheduler.

Each engine tick the scheduler picks one schedulable unit: a real warp, or
a *stress placeholder* standing in for a warp of stressing threads.
Placeholders do no work when picked — their effect on the application is
the scheduling dilution real stressing blocks cause (their memory traffic
is modelled separately by the pressure field).

Under thread randomisation the scheduler samples warps non-uniformly from
weights that are re-drawn periodically, creating bursts in which some
warps lag far behind others.  This widens race windows — the modelled
effect of the paper's thread-id randomisation heuristic, which changes
which warps co-reside and progress together.

Hot-path notes (see docs/ARCHITECTURE.md "Hot path & determinism"):

* The weighted pick reproduces ``Generator.choice(n, p=weights)`` from
  its primitive draw: numpy's scalar choice-with-p consumes exactly one
  ``next_double`` and returns ``cdf.searchsorted(roll, side="right")``
  with ``cdf = p.cumsum(); cdf /= cdf[-1]`` (pinned by
  ``tests/test_rng.py``).  Doing that search here — against a cdf cached
  per weight redraw — consumes the identical stream, so the pick
  sequence is bit-for-bit unchanged while a threaded-through
  :class:`~repro.rng.BufferedRNG` keeps serving scalar draws from its
  pre-draw block instead of degrading to direct delegation.
* The non-runnable fallback no longer rebuilds ``[w for w in warps if
  w.runnable]`` per pick: the engine reports every warp runnability
  transition (thread finished, parked at or released from a barrier)
  and the scheduler maintains the runnable list incrementally, in warp
  order, so the fallback ``integers(len(runnable))`` draw and its
  indexing are unchanged.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter

import numpy as np

from ..rng import BufferedRNG
from .warp import Warp

#: Ticks between weight re-draws under randomisation.
_RESHUFFLE_PERIOD = 64

_BY_INDEX = attrgetter("index")


class WarpScheduler:
    """Randomised warp picker over real warps plus stress placeholders."""

    __slots__ = (
        "warps",
        "n_stress_units",
        "rng",
        "randomise",
        "_n_units",
        "_cdf",
        "_ticks_since_shuffle",
        "_runnable",
    )

    def __init__(
        self,
        warps: list[Warp],
        n_stress_units: int,
        rng: np.random.Generator | BufferedRNG,
        randomise: bool = False,
    ):
        self.warps = warps
        self.n_stress_units = max(0, n_stress_units)
        self.rng = rng
        self.randomise = randomise
        self._n_units = len(warps) + self.n_stress_units
        self._cdf: np.ndarray | None = None
        self._ticks_since_shuffle = 0
        # Runnable warps in grid order (all warps start with at least
        # one active thread).  The engine calls note_unrunnable /
        # note_runnable on the exact transitions, so membership always
        # equals ``[w for w in self.warps if w.runnable]``.
        self._runnable = list(warps)
        if randomise:
            self._redraw_weights()

    def _redraw_weights(self) -> None:
        raw = self.rng.dirichlet(np.full(self._n_units, 0.5))
        cdf = raw.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf
        self._ticks_since_shuffle = 0

    # ------------------------------------------------------------------
    # runnability transitions (driven by the engine)
    # ------------------------------------------------------------------
    def note_unrunnable(self, warp: Warp) -> None:
        """A warp's last active thread finished or parked at a barrier."""
        self._runnable.remove(warp)

    def note_runnable(self, warp: Warp) -> None:
        """A barrier release re-activated a warp with no active threads."""
        insort(self._runnable, warp, key=_BY_INDEX)

    # ------------------------------------------------------------------
    def pick(self) -> Warp | None:
        """Pick the unit to advance this tick; None = stress placeholder."""
        if self._n_units == 0:
            return None
        rng = self.rng
        if self.randomise:
            self._ticks_since_shuffle += 1
            if self._ticks_since_shuffle >= _RESHUFFLE_PERIOD:
                self._redraw_weights()
            # One next_double + cdf search == Generator.choice(n, p=w)
            # (see module docstring); same draw, no delegation.
            idx = int(self._cdf.searchsorted(rng.random(), side="right"))
        else:
            idx = int(rng.integers(self._n_units))
        warps = self.warps
        if idx >= len(warps):
            return None
        warp = warps[idx]
        if not warp.n_active:
            # Fall back to any runnable warp so ticks are not wasted on
            # finished warps (keeps runtimes comparable across runs).
            runnable = self._runnable
            if not runnable:
                return None
            warp = runnable[int(rng.integers(len(runnable)))]
        return warp
