"""Warp scheduler.

Each engine tick the scheduler picks one schedulable unit: a real warp, or
a *stress placeholder* standing in for a warp of stressing threads.
Placeholders do no work when picked — their effect on the application is
the scheduling dilution real stressing blocks cause (their memory traffic
is modelled separately by the pressure field).

Under thread randomisation the scheduler samples warps non-uniformly from
weights that are re-drawn periodically, creating bursts in which some
warps lag far behind others.  This widens race windows — the modelled
effect of the paper's thread-id randomisation heuristic, which changes
which warps co-reside and progress together.
"""

from __future__ import annotations

import numpy as np

from ..rng import BufferedRNG
from .warp import Warp

#: Ticks between weight re-draws under randomisation.
_RESHUFFLE_PERIOD = 64


class WarpScheduler:
    """Randomised warp picker over real warps plus stress placeholders."""

    def __init__(
        self,
        warps: list[Warp],
        n_stress_units: int,
        rng: np.random.Generator | BufferedRNG,
        randomise: bool = False,
    ):
        # The scheduler draws ``integers``/``choice`` every tick, so a
        # BufferedRNG threaded through here degrades itself to direct
        # delegation after a few syncs — same stream, no block waste.
        self.warps = warps
        self.n_stress_units = max(0, n_stress_units)
        self.rng = rng
        self.randomise = randomise
        self._n_units = len(warps) + self.n_stress_units
        self._weights: np.ndarray | None = None
        self._ticks_since_shuffle = 0
        if randomise:
            self._redraw_weights()

    def _redraw_weights(self) -> None:
        raw = self.rng.dirichlet(np.full(self._n_units, 0.5))
        self._weights = raw
        self._ticks_since_shuffle = 0

    def pick(self) -> Warp | None:
        """Pick the unit to advance this tick; None = stress placeholder."""
        if self._n_units == 0:
            return None
        if self.randomise:
            self._ticks_since_shuffle += 1
            if self._ticks_since_shuffle >= _RESHUFFLE_PERIOD:
                self._redraw_weights()
            idx = int(self.rng.choice(self._n_units, p=self._weights))
        else:
            idx = int(self.rng.integers(self._n_units))
        if idx >= len(self.warps):
            return None
        warp = self.warps[idx]
        if not warp.runnable:
            # Fall back to any runnable warp so ticks are not wasted on
            # finished warps (keeps runtimes comparable across runs).
            runnable = [w for w in self.warps if w.runnable]
            if not runnable:
                return None
            warp = runnable[int(self.rng.integers(len(runnable)))]
        return warp
