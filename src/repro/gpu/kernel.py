"""Kernel and launch configuration descriptions."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry for one kernel launch.

    ``warp_size`` is 32 on real Nvidia hardware; simulations may shrink it
    to trade SIMT width for speed without changing the memory semantics.
    """

    grid_dim: int
    block_dim: int
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0 or self.warp_size <= 0:
            raise ValueError("launch dimensions must be positive")

    @property
    def n_threads(self) -> int:
        return self.grid_dim * self.block_dim

    @property
    def warps_per_block(self) -> int:
        return -(-self.block_dim // self.warp_size)


@dataclass(frozen=True)
class Kernel:
    """A device function plus its arguments.

    ``fn`` must be a generator function whose first parameter is a
    :class:`~repro.gpu.thread.ThreadContext`; remaining parameters are
    taken from ``args``.
    """

    name: str
    fn: Callable
    args: tuple = field(default=())

    def instantiate(self, ctx) -> object:
        """Create the coroutine for one thread."""
        return self.fn(ctx, *self.args)
