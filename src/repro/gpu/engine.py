"""The execution engine: runs kernels over the weak memory subsystem.

One engine tick = the scheduler picks one warp (or a stress placeholder),
every active thread of that warp attempts one operation, and the memory
subsystem advances one drain step.  Kernel completion implies a full
flush (device-wide visibility), matching CUDA's end-of-kernel semantics.

Timing model: a device fence puts the issuing thread to sleep for the
chip's fence stall cost (on top of the real ticks spent waiting for the
drain), so fence delays overlap across threads and only lengthen the
kernel along its critical path.  Kernel runtime in cycles is simply the
tick count; the accumulated fence stall cycles additionally feed the
Sec. 6 energy model as low-activity cycles.

Hot-path notes (see docs/ARCHITECTURE.md "Hot path & determinism"):

* The tick loop is O(1) per tick outside the picked warp: kernel
  completion reads the grid's maintained live-thread counter, each
  thread carries its SM (no per-run key->SM dict), and warp runnability
  transitions are pushed to the scheduler's incremental runnable list.
* Operations dispatch through a table keyed on the op kind instead of
  an if-chain, and each thread's per-op scratch dict is reused
  (cleared, not reallocated) across operations.
* None of this touches a random draw: the scheduler consumes the same
  stream in the same order, so fixed-seed executions are bit-identical
  (pinned by the app-path golden statistics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..chips.profile import HardwareProfile
from ..errors import KernelTimeoutError
from ..rng import BufferedRNG
from .events import (
    FENCE_DEVICE,
    OP_BARRIER,
    OP_FENCE,
    OP_ISSUE,
    OP_LOAD,
    OP_NOOP,
    OP_POLL,
    OP_RMW,
    OP_STORE,
    STALL,
)
from .grid import build_grid
from .kernel import Kernel, LaunchConfig
from .memory import MemorySystem
from .scheduler import WarpScheduler
from .warp import SimThread

#: Default tick budget per kernel (the paper's 30 s timeout analogue).
DEFAULT_MAX_TICKS = 400_000

#: Operations a thread may issue per scheduling turn.  Real warps issue
#: short instruction bursts back to back; without this, consecutive
#: program-order operations would be separated by a full scheduling
#: round-trip and weak-memory race windows would vanish.
BURST = 4


class Outcome(enum.Enum):
    """How a kernel execution ended."""

    OK = "ok"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome and cost of one kernel execution."""

    outcome: Outcome
    ticks: int
    fence_stall_cycles: int
    n_fences: int
    n_swaps: int
    n_bypasses: int
    n_slow_loads: int

    @property
    def timed_out(self) -> bool:
        return self.outcome is Outcome.TIMEOUT

    @property
    def runtime_ticks(self) -> int:
        """Modelled runtime in cycles.

        Fence sleeps already unfold inside the tick count; the separate
        ``fence_stall_cycles`` tally is used by the energy model.
        """
        return self.ticks

    def merged(self, other: "ExecutionResult") -> "ExecutionResult":
        """Accumulate results across a multi-kernel application run."""
        worse = (
            Outcome.TIMEOUT
            if (self.timed_out or other.timed_out)
            else Outcome.OK
        )
        return ExecutionResult(
            outcome=worse,
            ticks=self.ticks + other.ticks,
            fence_stall_cycles=self.fence_stall_cycles
            + other.fence_stall_cycles,
            n_fences=self.n_fences + other.n_fences,
            n_swaps=self.n_swaps + other.n_swaps,
            n_bypasses=self.n_bypasses + other.n_bypasses,
            n_slow_loads=self.n_slow_loads + other.n_slow_loads,
        )


class Engine:
    """Drives a grid of kernel coroutines over a :class:`MemorySystem`.

    One instance may execute many runs back to back; the batch driver
    (:class:`repro.apps.base.ApplicationBatch`) re-points ``rng`` and
    ``n_stress_units`` between runs instead of reconstructing it.
    """

    __slots__ = (
        "chip",
        "memory",
        "rng",
        "max_ticks",
        "n_stress_units",
        "randomise",
        "raise_on_timeout",
        "_grid",
        "_scheduler",
    )

    def __init__(
        self,
        chip: HardwareProfile,
        memory: MemorySystem,
        rng: "np.random.Generator | BufferedRNG",
        max_ticks: int = DEFAULT_MAX_TICKS,
        n_stress_units: int = 0,
        randomise: bool = False,
        raise_on_timeout: bool = False,
    ):
        self.chip = chip
        self.memory = memory
        self.rng = rng
        self.max_ticks = max_ticks
        self.n_stress_units = n_stress_units
        self.randomise = randomise
        self.raise_on_timeout = raise_on_timeout
        self._grid = None
        self._scheduler: WarpScheduler | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        kernel: Kernel,
        config: LaunchConfig,
        fence_sites: frozenset[str] = frozenset(),
    ) -> ExecutionResult:
        """Execute one kernel launch to completion (or timeout)."""
        grid = build_grid(
            kernel,
            config,
            self.chip.n_sms,
            fence_sites=fence_sites,
            randomise_rng=self.rng if self.randomise else None,
        )
        scheduler = WarpScheduler(
            grid.warps, self.n_stress_units, self.rng, self.randomise
        )
        self._grid = grid
        self._scheduler = scheduler
        mem = self.memory
        swaps0, byp0, slow0 = mem.n_swaps, mem.n_bypasses, mem.n_slow_loads

        ticks = 0
        fence_stalls = 0
        n_fences = 0
        barrier_blocks: set[int] = set()
        timed_out = False
        max_ticks = self.max_ticks
        pick = scheduler.pick
        step = mem.step
        exec_op = self._exec

        try:
            while grid.n_live:
                ticks += 1
                if ticks > max_ticks:
                    timed_out = True
                    break
                warp = pick()
                if warp is not None:
                    for thread in warp.threads:
                        if thread.sleep_until > ticks:
                            continue
                        for _ in range(BURST):
                            if thread.done or thread.at_barrier:
                                break
                            stall, fenced, progressed = exec_op(thread)
                            if stall:
                                # The fencing thread waits out the
                                # pipeline flush; other warps keep
                                # running (fence stalls overlap across
                                # threads).
                                thread.sleep_until = ticks + stall
                                fence_stalls += stall
                            n_fences += fenced
                            if thread.at_barrier:
                                barrier_blocks.add(warp.block_id)
                                break
                            if not progressed:
                                break
                step()
                if barrier_blocks:
                    self._release_barriers(grid, barrier_blocks)
        finally:
            # A kernel programming error escaping the loop must not
            # leave the grid pinned on a batch-held engine.
            self._grid = None
            self._scheduler = None

        # The loop only exits with every thread finished or the tick
        # budget exhausted; live_threads() additionally cross-checks the
        # maintained counter against the done-flag scan under pytest.
        assert timed_out or grid.live_threads() == 0

        mem.flush_all()
        if timed_out and self.raise_on_timeout:
            raise KernelTimeoutError(self.max_ticks)
        return ExecutionResult(
            outcome=Outcome.TIMEOUT if timed_out else Outcome.OK,
            ticks=ticks,
            fence_stall_cycles=fence_stalls,
            n_fences=n_fences,
            n_swaps=mem.n_swaps - swaps0,
            n_bypasses=mem.n_bypasses - byp0,
            n_slow_loads=mem.n_slow_loads - slow0,
        )

    def run_all(
        self,
        kernels: list[tuple[Kernel, LaunchConfig]],
        fence_sites: frozenset[str] = frozenset(),
    ) -> ExecutionResult:
        """Run several kernels back to back (multi-kernel applications)."""
        result: ExecutionResult | None = None
        for kernel, config in kernels:
            step = self.run(kernel, config, fence_sites)
            result = step if result is None else result.merged(step)
            if step.timed_out:
                break
        assert result is not None, "run_all needs at least one kernel"
        return result

    # ------------------------------------------------------------------
    # per-operation handlers (dispatched on the op kind)
    # ------------------------------------------------------------------
    def _exec(self, thread: SimThread) -> tuple[int, int, bool]:
        """Attempt one operation for one thread.

        Returns (fence stall cycles charged, fences completed, whether
        the operation completed — False means the thread is stalled and
        its burst ends).
        """
        op = thread.op
        if op is None:
            if not self._advance(thread):
                return 0, 0, False
            op = thread.op
        try:
            handler = _OP_HANDLERS[op[0]]
        except KeyError:  # pragma: no cover - kernel programming error
            raise ValueError(
                f"unknown op {op!r} from thread {thread.key}"
            ) from None
        return handler(self, thread, op)

    def _op_store(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        if self.memory.write(thread.sm, thread.key, op[1], op[2]):
            self._complete(thread, None)
            return 0, 0, True
        return 0, 0, False

    def _op_load(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        value = self.memory.read(
            thread.sm, thread.key, op[1], thread.op_state
        )
        if value is not STALL:
            self._complete(thread, value)
            return 0, 0, True
        return 0, 0, False

    def _op_rmw(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        old = self.memory.rmw(
            thread.sm, thread.key, op[1], op[2], thread.op_state
        )
        if old is not STALL:
            self._complete(thread, old)
            return 0, 0, True
        return 0, 0, False

    def _op_issue(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        handle = self.memory.issue_load(thread.sm, thread.key, op[1])
        self._complete(thread, handle)
        return 0, 0, True

    def _op_poll(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        value = self.memory.poll_load(op[1])
        if value is not STALL:
            self._complete(thread, value)
            return 0, 0, True
        return 0, 0, False

    def _op_fence(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        mem = self.memory
        op_state = thread.op_state
        if not op_state.get("begun"):
            op_state["pending"] = mem.thread_pending(thread.sm, thread.key)
            mem.fence_begin(thread.key)
            op_state["begun"] = True
        if mem.fence_done(thread.sm, thread.key):
            had_pending = op_state.get("pending", False)
            self._complete(thread, None)
            if had_pending:
                # The fence actually waited on the write pipeline.
                cost = self.chip.fence_stall_cycles
            else:
                # Nothing to drain: a fence after a load (or an
                # already-drained store) costs almost nothing.
                cost = 2
            if op[1] != FENCE_DEVICE:
                cost = cost // 4 + 1  # block-level fences are cheap
            return cost, 1, True
        return 0, 0, False

    def _op_barrier(
        self, thread: SimThread, op: tuple
    ) -> tuple[int, int, bool]:
        thread.at_barrier = True
        thread.op = None
        thread.to_send = None
        warp = thread.warp
        warp.n_active -= 1
        if not warp.n_active:
            self._scheduler.note_unrunnable(warp)
        return 0, 0, True

    def _op_noop(self, thread: SimThread, op: tuple) -> tuple[int, int, bool]:
        self._complete(thread, None)
        return 0, 0, True

    @staticmethod
    def _complete(thread: SimThread, value: object) -> None:
        thread.op = None
        state = thread.op_state
        if state:
            state.clear()
        thread.to_send = value

    def _advance(self, thread: SimThread) -> bool:
        """Pull the next op from the coroutine; False if it finished."""
        try:
            if thread.started:
                op = thread.gen.send(thread.to_send)
            else:
                thread.started = True
                op = next(thread.gen)
        except StopIteration:
            thread.done = True
            self._grid.n_live -= 1
            warp = thread.warp
            warp.n_active -= 1
            if not warp.n_active:
                self._scheduler.note_unrunnable(warp)
            return False
        thread.op = op
        state = thread.op_state
        if state:
            state.clear()
        thread.to_send = None
        return True

    def _release_barriers(self, grid, barrier_blocks: set[int]) -> None:
        done = []
        for block_id in barrier_blocks:
            block = grid.blocks[block_id]
            if block.barrier_ready():
                for thread in block.release_barrier():
                    warp = thread.warp
                    if not warp.n_active:
                        self._scheduler.note_runnable(warp)
                    warp.n_active += 1
                    self.memory.drain_thread(block.sm, thread.key)
                done.append(block_id)
        barrier_blocks.difference_update(done)


#: Op-kind dispatch table (module level so it is built once; handlers
#: are plain functions taking the engine instance explicitly).
_OP_HANDLERS = {
    OP_STORE: Engine._op_store,
    OP_LOAD: Engine._op_load,
    OP_RMW: Engine._op_rmw,
    OP_FENCE: Engine._op_fence,
    OP_BARRIER: Engine._op_barrier,
    OP_NOOP: Engine._op_noop,
    OP_ISSUE: Engine._op_issue,
    OP_POLL: Engine._op_poll,
}
