"""Memory pressure exerted by stressing threads.

The paper's stressing threads hammer scratchpad locations that are
completely disjoint from the application's data, so their only coupling to
the application is through contention inside the memory subsystem.  We
model that coupling directly: a stress configuration is compiled into a
static per-channel *pressure field* for the duration of one execution
(stressing runs for at least the whole kernel in the paper, so a constant
field is the right steady-state picture).

Pressure on a channel raises the drain latency of stores to that channel
and the probability of cross-channel reordering (see
:mod:`repro.gpu.memory`).  The number of *hot* channels (pressure above
the chip's threshold) selects a turbulence multiplier — the mechanism
behind the paper's finding that stressing exactly two patch-sized regions
is optimal (Tab. 2, Fig. 4).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..chips.profile import HardwareProfile

#: Stressing threads per location at which pressure saturates.
_THREADS_NORM = 16.0
#: Cap on per-channel pressure.
_PRESSURE_CAP = 1.8
#: Turbulence attainable by diffuse (sub-threshold) pressure.
_DIFFUSE_FACTOR = 0.15


def _intensity(threads_per_location: float) -> float:
    """Thread-count saturation: beyond ~2 warps per location, extra
    stressing threads add no pressure (the access sequence's strength is
    what differentiates configurations, as in the paper's Tab. 3)."""
    return min(1.0, threads_per_location / _THREADS_NORM)


class StressField:
    """Static per-channel pressure for one execution."""

    def __init__(self, profile: HardwareProfile, press: np.ndarray):
        if press.shape != (profile.n_channels,):
            raise ValueError(
                f"pressure array must have shape ({profile.n_channels},)"
            )
        self.profile = profile
        self.press = np.clip(press, 0.0, _PRESSURE_CAP)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, profile: HardwareProfile) -> "StressField":
        """No stress (the paper's ``no-str`` environment)."""
        return cls(profile, np.zeros(profile.n_channels))

    @classmethod
    def from_locations(
        cls,
        profile: HardwareProfile,
        scratchpad_base: int,
        locations: Iterable[int],
        sequence_strength: float,
        n_stress_threads: int,
    ) -> "StressField":
        """Pressure from targeted stressing (the ``sys-str`` shape).

        ``locations`` are word offsets into the scratchpad; the stressing
        threads are divided evenly between them (paper Sec. 3.4).
        """
        locations = list(locations)
        press = np.zeros(profile.n_channels)
        if locations and n_stress_threads > 0:
            per_location = n_stress_threads / len(locations)
            # Stressing warps share issue bandwidth: every additional
            # simultaneously stressed region dilutes the pressure each
            # one exerts (this is what bends the paper's Fig. 4 curves
            # back down after the optimum).
            sharing = 1.0 / (1.0 + 0.35 * (len(locations) - 1))
            boost = sequence_strength * _intensity(per_location) * sharing
            for loc in locations:
                press[profile.channel(scratchpad_base + loc)] += boost
        return cls(profile, press)

    @classmethod
    def uniform(
        cls, profile: HardwareProfile, level: float
    ) -> "StressField":
        """Equal pressure on every channel (the ``cache-str`` shape).

        An L2-sized scratchpad walked by every stressing block touches
        every channel at a moderate, even rate.
        """
        return cls(profile, np.full(profile.n_channels, level))

    @classmethod
    def diffuse(
        cls, profile: HardwareProfile, total: float
    ) -> "StressField":
        """Total pressure spread thinly (the ``rand-str`` shape).

        Random single-word accesses scatter over all channels, so no
        channel individually gets hot.
        """
        return cls(
            profile, np.full(profile.n_channels, total / profile.n_channels)
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def hot_channels(self) -> int:
        """Channels whose pressure exceeds the chip threshold."""
        return int(np.sum(self.press > self.profile.pressure_threshold))

    @property
    def turbulence(self) -> float:
        """Reordering multiplier induced by this field (see module doc)."""
        hot = self.hot_channels
        if hot > 0:
            return self.profile.turbulence(hot)
        total = float(self.press.sum())
        if total <= 0.0:
            return 0.0
        saturation = self.profile.pressure_threshold * self.profile.n_channels
        return _DIFFUSE_FACTOR * min(1.0, total / saturation)

    def effective(self, ch_primary: int, ch_secondary: int) -> float:
        """Pressure relevant to reordering an access on ``ch_primary``
        past one on ``ch_secondary``."""
        return float(
            self.press[ch_primary]
            + self.profile.cross_channel_weight * self.press[ch_secondary]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cells = ", ".join(f"{p:.2f}" for p in self.press)
        return f"StressField({self.profile.short_name}, [{cells}])"
