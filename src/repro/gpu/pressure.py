"""Memory pressure exerted by stressing threads.

The paper's stressing threads hammer scratchpad locations that are
completely disjoint from the application's data, so their only coupling to
the application is through contention inside the memory subsystem.  We
model that coupling directly: a stress configuration is compiled into a
static per-channel *pressure field* for the duration of one execution
(stressing runs for at least the whole kernel in the paper, so a constant
field is the right steady-state picture).

Pressure on a channel raises the drain latency of stores to that channel
and the probability of cross-channel reordering (see
:mod:`repro.gpu.memory`).  The number of *hot* channels (pressure above
the chip's threshold) selects a turbulence multiplier — the mechanism
behind the paper's finding that stressing exactly two patch-sized regions
is optimal (Tab. 2, Fig. 4).

A field is immutable once built (``press`` is marked read-only), which is
what lets the hot path share it: the zero field is cached per chip, the
derived quantities (``turbulence``, ``press_bytes``) are computed at most
once per field, and :mod:`repro.gpu.memory` keys its probability-table
LRU on ``(chip, press_bytes, turbulence, weak_scale)``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable
from functools import cached_property

import numpy as np

from ..chips.profile import HardwareProfile

#: Stressing threads per location at which pressure saturates.
_THREADS_NORM = 16.0
#: Cap on per-channel pressure.
_PRESSURE_CAP = 1.8
#: Turbulence attainable by diffuse (sub-threshold) pressure.
_DIFFUSE_FACTOR = 0.15

#: Cached zero fields, keyed by chip identity (``no-str`` builds one per
#: execution; it never changes, so one shared read-only instance per
#: chip suffices).
_ZERO_FIELDS: dict[tuple, "StressField"] = {}

#: Interned fields, keyed by (chip, pressure shape).  Stress specs
#: rebuild their field every execution, but the pressure vector is a
#: function of a handful of discrete inputs (channel multiset and
#: per-location boost, or a uniform level), so whole grids revisit a few
#: dozen shapes; sharing the immutable instance also preserves its
#: cached ``turbulence``/``press_bytes`` and lets
#: ``MemorySystem.reset`` skip the table lookup on identity.
_FIELD_CACHE: "OrderedDict[tuple, StressField]" = OrderedDict()
_FIELD_CACHE_MAX = 512


def lru_get(cache: OrderedDict, key, build, maxsize: int):
    """Bounded-LRU lookup: return ``cache[key]``, building and
    inserting it on a miss and evicting the least recently used entry
    past ``maxsize`` (shared by the field and probability-table
    caches)."""
    value = cache.get(key)
    if value is None:
        cache[key] = value = build()
        if len(cache) > maxsize:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return value


def _interned(key: tuple, build) -> "StressField":
    return lru_get(_FIELD_CACHE, key, build, _FIELD_CACHE_MAX)


def _intensity(threads_per_location: float) -> float:
    """Thread-count saturation: beyond ~2 warps per location, extra
    stressing threads add no pressure (the access sequence's strength is
    what differentiates configurations, as in the paper's Tab. 3)."""
    return min(1.0, threads_per_location / _THREADS_NORM)


class StressField:
    """Static per-channel pressure for one execution."""

    def __init__(self, profile: HardwareProfile, press: np.ndarray):
        press = np.asarray(press, dtype=np.float64)
        if press.shape != (profile.n_channels,):
            raise ValueError(
                f"pressure array must have shape ({profile.n_channels},)"
            )
        self.profile = profile
        if press.min() < 0.0 or press.max() > _PRESSURE_CAP:
            press = np.clip(press, 0.0, _PRESSURE_CAP)
        elif press.flags.writeable:
            # Own a copy rather than freezing the caller's array in
            # place; already-read-only inputs (interned fields) are
            # shared as-is.
            press = press.copy()
        press.setflags(write=False)
        self.press = press

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, profile: HardwareProfile) -> "StressField":
        """No stress (the paper's ``no-str`` environment)."""
        field = _ZERO_FIELDS.get(profile.cache_token)
        if field is None:
            field = cls(profile, np.zeros(profile.n_channels))
            _ZERO_FIELDS[profile.cache_token] = field
        return field

    @classmethod
    def from_locations(
        cls,
        profile: HardwareProfile,
        scratchpad_base: int,
        locations: Iterable[int],
        sequence_strength: float,
        n_stress_threads: int,
    ) -> "StressField":
        """Pressure from targeted stressing (the ``sys-str`` shape).

        ``locations`` are word offsets into the scratchpad; the stressing
        threads are divided evenly between them (paper Sec. 3.4).
        """
        locations = list(locations)
        if not locations or n_stress_threads <= 0:
            return cls.zero(profile)
        per_location = n_stress_threads / len(locations)
        # Stressing warps share issue bandwidth: every additional
        # simultaneously stressed region dilutes the pressure each
        # one exerts (this is what bends the paper's Fig. 4 curves
        # back down after the optimum).
        sharing = 1.0 / (1.0 + 0.35 * (len(locations) - 1))
        boost = sequence_strength * _intensity(per_location) * sharing
        # The field depends only on the channel multiset and the boost
        # (repeated same-value adds are order-independent), so intern.
        channels = sorted(
            profile.channel(scratchpad_base + loc) for loc in locations
        )
        key = (profile.cache_token, tuple(channels), boost)

        def build():
            press = np.zeros(profile.n_channels)
            for ch in channels:
                press[ch] += boost
            return cls(profile, press)

        return _interned(key, build)

    @classmethod
    def uniform(
        cls, profile: HardwareProfile, level: float
    ) -> "StressField":
        """Equal pressure on every channel (the ``cache-str`` shape).

        An L2-sized scratchpad walked by every stressing block touches
        every channel at a moderate, even rate.
        """
        return _interned(
            (profile.cache_token, "uniform", level),
            lambda: cls(profile, np.full(profile.n_channels, level)),
        )

    @classmethod
    def diffuse(
        cls, profile: HardwareProfile, total: float
    ) -> "StressField":
        """Total pressure spread thinly (the ``rand-str`` shape).

        Random single-word accesses scatter over all channels, so no
        channel individually gets hot.
        """
        level = total / profile.n_channels
        return _interned(
            (profile.cache_token, "uniform", level),
            lambda: cls(profile, np.full(profile.n_channels, level)),
        )

    # ------------------------------------------------------------------
    # derived quantities (computed at most once per immutable field)
    # ------------------------------------------------------------------
    @cached_property
    def press_bytes(self) -> bytes:
        """Raw pressure vector — the hashable part of cache keys."""
        return self.press.tobytes()

    @cached_property
    def hot_channels(self) -> int:
        """Channels whose pressure exceeds the chip threshold."""
        return int(np.sum(self.press > self.profile.pressure_threshold))

    @cached_property
    def turbulence(self) -> float:
        """Reordering multiplier induced by this field (see module doc)."""
        hot = self.hot_channels
        if hot > 0:
            return self.profile.turbulence(hot)
        total = float(self.press.sum())
        if total <= 0.0:
            return 0.0
        saturation = self.profile.pressure_threshold * self.profile.n_channels
        return _DIFFUSE_FACTOR * min(1.0, total / saturation)

    def effective(self, ch_primary: int, ch_secondary: int) -> float:
        """Pressure relevant to reordering an access on ``ch_primary``
        past one on ``ch_secondary``."""
        return float(
            self.press[ch_primary]
            + self.profile.cross_channel_weight * self.press[ch_secondary]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cells = ", ".join(f"{p:.2f}" for p in self.press)
        return f"StressField({self.profile.short_name}, [{cells}])"
