"""Word-addressed global memory layout.

The simulator uses a single flat, word-addressed global address space.
Buffers are carved out of it by a bump allocator; a word address maps to a
memory *channel* via the chip's critical patch size (see
:meth:`repro.chips.profile.HardwareProfile.channel`), which is the
geometry underlying the paper's patch-finding experiments.

The paper cannot control the physical distance between an application's
data and the stressing scratchpad (GPUs use virtual addressing); here the
allocator is deterministic, standing in for the stable-but-unknown
physical layout a given application gets on a given chip.  An optional
allocation ``offset`` lets experiments randomise the layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidAccessError


@dataclass(frozen=True)
class Buffer:
    """A contiguous array of words inside the global address space."""

    name: str
    base: int
    size: int

    def addr(self, index: int) -> int:
        """Absolute word address of ``self[index]`` (bounds checked)."""
        if not 0 <= index < self.size:
            raise InvalidAccessError(
                f"index {index} out of bounds for buffer "
                f"{self.name!r} of size {self.size}"
            )
        return self.base + index

    def __len__(self) -> int:
        return self.size


#: Words per default allocation boundary.  ``cudaMalloc`` guarantees at
#: least 256-byte alignment, i.e. 64 words — which is why distinct
#: buffers of real applications land in distinct patches.
CUDA_MALLOC_ALIGN = 64


class AddressSpace:
    """Bump allocator over the flat word-addressed global memory."""

    def __init__(self, offset: int = 0, default_align: int = 1):
        if offset < 0:
            raise ValueError("allocation offset must be non-negative")
        if default_align <= 0:
            raise ValueError("default alignment must be positive")
        self._next = offset
        self._default_align = default_align
        self._buffers: dict[str, Buffer] = {}

    def alloc(self, name: str, size: int, align: int | None = None) -> Buffer:
        """Allocate ``size`` words, optionally aligned to ``align`` words."""
        if align is None:
            align = self._default_align
        if size <= 0:
            raise ValueError(f"buffer size must be positive, got {size}")
        if align <= 0:
            raise ValueError(f"alignment must be positive, got {align}")
        align = max(align, self._default_align)
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        base = -(-self._next // align) * align
        buf = Buffer(name=name, base=base, size=size)
        self._next = base + size
        self._buffers[name] = buf
        return buf

    def buffer(self, name: str) -> Buffer:
        """Look up a previously allocated buffer by name."""
        try:
            return self._buffers[name]
        except KeyError:
            raise InvalidAccessError(f"no buffer named {name!r}") from None

    @property
    def words_used(self) -> int:
        """Total extent of the allocated address range, in words."""
        return self._next

    def buffers(self) -> list[Buffer]:
        """All allocated buffers, in allocation order."""
        return list(self._buffers.values())
