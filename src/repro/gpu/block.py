"""Thread blocks: barrier scope and SM residency."""

from __future__ import annotations

from .warp import SimThread, Warp


class Block:
    """A CUDA thread block resident on one SM."""

    __slots__ = ("block_id", "sm", "warps", "threads")

    def __init__(self, block_id: int, sm: int, warps: list[Warp]):
        self.block_id = block_id
        self.sm = sm
        self.warps = warps
        self.threads: list[SimThread] = [
            t for warp in warps for t in warp.threads
        ]

    @property
    def finished(self) -> bool:
        return all(t.done for t in self.threads)

    def barrier_ready(self) -> bool:
        """True when the block barrier can release.

        Lenient CUDA interpretation: threads that already exited do not
        hold up the barrier (real barrier divergence is undefined
        behaviour; the applications studied here never rely on it).
        """
        any_waiting = False
        for t in self.threads:
            if t.at_barrier:
                any_waiting = True
            elif not t.done:
                return False
        return any_waiting

    def release_barrier(self) -> list[SimThread]:
        """Release all waiting threads; returns them for memory drain."""
        released = []
        for t in self.threads:
            if t.at_barrier:
                t.at_barrier = False
                released.append(t)
        return released
