"""ct-octree: octree partitioning with non-blocking queues (Tab. 4).

Worker blocks partition particles into per-octant queues: a slot is
claimed with an atomic tail increment, the particle is written into the
slot with a plain store, and completion is signalled through an atomic
``done`` counter.  A builder block (in the same kernel, as in the
Cederman-Tsigas design where blocks consume each other's queues) waits
for all enqueues and assembles the octree nodes from the queues.

The weak memory bug: the slot's publishing ``atomicExch`` on the ready
flag can overtake the buffered particle store, so the builder — which
consumes the queues concurrently, as the worker blocks of the original
do — observes a published slot but reads a stale (empty) item, and the
particle is lost from the octree.  One fence after the item store
hardens the application — matching the paper's single-fence reduction
for ct-octree.

(The paper also found non-weak-memory bugs in this application —
improper memory initialisation and out-of-bounds queue accesses — and
patched them before the study; our implementation is the patched shape:
queues are initialised and slot indices bounds-checked by construction.)
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch

N_PARTICLES = 64
N_OCTANTS = 4
GRID_DIM = 9  # 8 worker blocks + 1 builder block
BLOCK_DIM = 8
WARP_SIZE = 8
#: Particle ids are stored +1 so that 0 means "empty slot".
EMPTY = 0

SITE_STORE_ITEM = "ct-octree:store-item"
SITE_LOAD_ITEM = "ct-octree:load-item"
SITE_STORE_NODE = "ct-octree:store-node"


def _octant(x: int, y: int) -> int:
    return (2 if y >= 8 else 0) + (1 if x >= 8 else 0)


def octree_kernel(ctx: ThreadContext, px, py, q_items, q_flags, q_tail,
                  octree, n):
    """Workers enqueue particles per octant; a builder block consumes
    the queues concurrently, slot by slot, as slots are published."""
    if ctx.block_id == ctx.grid_dim - 1:
        # Builder block: every thread consumes a strided slice of the
        # queue slots as they are published, so published items are
        # read promptly (the original's worker blocks likewise consume
        # the queues while they are being filled).
        consumed: set[int] = set()
        while True:
            tails = []
            for quad in range(N_OCTANTS):
                t = yield from ctx.load(q_tail, quad)
                tails.append(min(t, n))
            pending = False
            for quad in range(N_OCTANTS):
                for slot in range(ctx.tid, tails[quad], ctx.block_dim):
                    j = quad * n + slot
                    if j in consumed:
                        continue
                    ready = yield from ctx.load(q_flags, j)
                    if ready != 1:
                        pending = True
                        continue
                    item = yield from ctx.load(
                        q_items, j, site=SITE_LOAD_ITEM
                    )
                    yield from ctx.store(
                        octree, j, item, site=SITE_STORE_NODE
                    )
                    consumed.add(j)
            if sum(tails) >= n and not pending:
                return

    worker_threads = (ctx.grid_dim - 1) * ctx.block_dim
    tid = ctx.global_tid()
    p = tid
    while p < n:
        x = yield from ctx.load(px, p)
        y = yield from ctx.load(py, p)
        quad = _octant(x, y)
        slot = yield from ctx.atomic_add(q_tail, quad, 1)
        yield from ctx.store(
            q_items, quad * n + slot, p + 1, site=SITE_STORE_ITEM
        )
        # Publish the slot (atomics are not fences: this can overtake
        # the item store above).
        yield from ctx.atomic_exch(q_flags, quad * n + slot, 1)
        p += worker_threads


class CtOctree(Application):
    """The ct-octree case study."""

    name = "ct-octree"
    description = (
        "Octree partitioning routine by Cederman and Tsigas"
    )
    communication = "Concurrent access to non-blocking queues"
    postcondition = "All original particles are in final octree"
    base_fences = frozenset()

    def sites(self) -> tuple[str, ...]:
        return (SITE_STORE_ITEM, SITE_LOAD_ITEM, SITE_STORE_NODE)

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_ITEM})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        px = space.alloc("px", N_PARTICLES)
        py = space.alloc("py", N_PARTICLES)
        q_items = space.alloc("q-items", N_OCTANTS * N_PARTICLES)
        q_flags = space.alloc("q-flags", N_OCTANTS * N_PARTICLES)
        q_tail = space.alloc("q-tail", N_OCTANTS)
        octree = space.alloc("octree", N_OCTANTS * N_PARTICLES)

        xs = [(i * 5) % 16 for i in range(N_PARTICLES)]
        ys = [(i * 3) % 16 for i in range(N_PARTICLES)]
        mem.host_fill(px, xs)
        mem.host_fill(py, ys)
        mem.host_fill(q_items, [EMPTY] * (N_OCTANTS * N_PARTICLES))
        mem.host_fill(q_flags, [0] * (N_OCTANTS * N_PARTICLES))
        mem.host_fill(q_tail, [0] * N_OCTANTS)
        mem.host_fill(octree, [EMPTY] * (N_OCTANTS * N_PARTICLES))

        by_octant: dict[int, set[int]] = {q: set() for q in range(N_OCTANTS)}
        for i, (x, y) in enumerate(zip(xs, ys)):
            by_octant[_octant(x, y)].add(i + 1)

        kernel = Kernel(
            name="octree-partition",
            fn=octree_kernel,
            args=(px, py, q_items, q_flags, q_tail, octree, N_PARTICLES),
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            for quad in range(N_OCTANTS):
                got = set()
                for slot in range(N_PARTICLES):
                    item = memory.host_read(octree, quad * N_PARTICLES + slot)
                    if item != EMPTY:
                        got.add(item)
                if got != by_octant[quad]:
                    return False
            return True

        return [(kernel, config)], check
