"""Application abstraction and the shared execution driver.

An :class:`Application` packages:

* ``setup`` — allocate buffers, initialise memory, and return the kernel
  launches plus a post-condition checker;
* ``sites`` — every fence site in the code (one per global memory
  access), the starting set for empirical fence insertion;
* ``base_fences`` — the fences present in the original source (empty for
  fence-free applications and the ``-nf`` variants).

:func:`run_application` executes an application on a chip under a
testing environment: it appends a stressing scratchpad after the
application's buffers, compiles the stress into a pressure field, adds
stressing blocks to the scheduler, runs all kernels, and evaluates the
post-condition.  A timeout counts as an erroneous run (the paper's 30 s
timeout catches weak behaviours that break termination conditions).
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

from ..chips.profile import HardwareProfile
from ..gpu.addresses import AddressSpace
from ..gpu.engine import Engine, ExecutionResult
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..rng import BufferedRNG, make_rng
from ..stress.strategies import NoStress, with_threads_range

#: Default per-kernel tick budget for applications (paper: 30 s timeout,
#: ~4x a native run).
APP_MAX_TICKS = 120_000

Checker = Callable[[MemorySystem], bool]
Launch = tuple[Kernel, LaunchConfig]


@dataclass(frozen=True)
class AppRun:
    """Outcome of one application execution."""

    ok: bool
    timed_out: bool
    result: ExecutionResult

    @property
    def erroneous(self) -> bool:
        """Paper semantics: post-condition failure or timeout."""
        return not self.ok


class Application(abc.ABC):
    """One case study of Table 4 (see module docstring)."""

    #: Short name used throughout the paper (e.g. ``cbe-dot``).
    name: str = ""
    #: One-line description (Table 4 column 2).
    description: str = ""
    #: Communication idiom (Table 4 column 3).
    communication: str = ""
    #: Post-condition (Table 4 column 4).
    postcondition: str = ""
    #: Fence sites present in the original application source.
    base_fences: frozenset[str] = frozenset()

    @abc.abstractmethod
    def sites(self) -> tuple[str, ...]:
        """All fence sites, in program order (paper Sec. 5: fences are
        sorted by code location for binary reduction)."""

    @abc.abstractmethod
    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        """Allocate and initialise buffers; return launches + checker."""

    # -- metadata used by tests and the experiment harness -------------
    def required_sites(self) -> frozenset[str]:
        """Ground-truth minimal fence set that suppresses the bug.

        This is *not* consulted by empirical fence insertion (which only
        runs tests); it exists so the test suite can validate what the
        insertion converges to.
        """
        return frozenset()

    def table4_row(self) -> dict[str, str]:
        return {
            "short name": self.name,
            "description": self.description,
            "communication": self.communication,
            "post-condition": self.postcondition,
        }


def run_application(
    app: Application,
    chip: HardwareProfile,
    stress_spec=None,
    randomise: bool = False,
    seed: int = 0,
    fence_sites: frozenset[str] | None = None,
    max_ticks: int = APP_MAX_TICKS,
) -> AppRun:
    """Execute ``app`` once on ``chip`` under a testing environment.

    ``fence_sites`` of ``None`` means "as shipped" (the application's
    ``base_fences``); pass an explicit set when experimenting with fence
    placements (Sec. 5 and Sec. 6).
    """
    if stress_spec is None:
        stress_spec = NoStress()
    if fence_sites is None:
        fence_sites = app.base_fences
    # BufferedRNG serves the memory system's scalar draws from block
    # pre-draws of the identical stream; the engine's scheduler
    # interleaves other distributions every tick, in which case the
    # wrapper degrades itself to direct delegation (see repro.rng).
    rng = BufferedRNG(make_rng(seed, "app", app.name, chip.short_name))

    # Buffers are allocated with cudaMalloc's 256-byte (64-word)
    # alignment, so distinct buffers occupy distinct patches.
    space = AddressSpace(default_align=64)
    # The memory system is created before setup so applications can
    # host-initialise through it; the stress field is attached after the
    # scratchpad is allocated (it only affects kernel execution).
    mem = MemorySystem(
        chip,
        rng=rng,
        weak_scale=chip.app_sensitivity(app.name),
    )
    launches, checker = app.setup(space, mem)
    scratch = space.alloc(
        "stress-scratchpad", 4096, align=chip.patch_size * chip.n_channels
    )

    app_warps = sum(
        cfg.grid_dim * cfg.warps_per_block for _k, cfg in launches
    )
    app_threads = max(cfg.n_threads for _k, cfg in launches)
    # Paper Sec. 4.2: stressing blocks are 15%-50% of the application's
    # blocks, so thread counts scale with the application, not the chip.
    spec = with_threads_range(
        stress_spec, (max(8, app_threads // 6), max(16, app_threads // 2))
    )
    mem.set_stress(spec.build(chip, scratch.base, scratch.size, rng))

    engine = Engine(
        chip,
        mem,
        rng,
        max_ticks=max_ticks,
        n_stress_units=spec.stress_units(app_warps, rng),
        randomise=randomise,
    )
    result = engine.run_all(launches, fence_sites=frozenset(fence_sites))
    ok = (not result.timed_out) and bool(checker(mem))
    return AppRun(ok=ok, timed_out=result.timed_out, result=result)
