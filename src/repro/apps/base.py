"""Application abstraction and the shared execution driver.

An :class:`Application` packages:

* ``setup`` — allocate buffers, initialise memory, and return the kernel
  launches plus a post-condition checker;
* ``sites`` — every fence site in the code (one per global memory
  access), the starting set for empirical fence insertion;
* ``base_fences`` — the fences present in the original source (empty for
  fence-free applications and the ``-nf`` variants).

:func:`run_application` executes an application on a chip under a
testing environment: it appends a stressing scratchpad after the
application's buffers, compiles the stress into a pressure field, adds
stressing blocks to the scheduler, runs all kernels, and evaluates the
post-condition.  A timeout counts as an erroneous run (the paper's 30 s
timeout catches weak behaviours that break termination conditions).
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

from ..chips.profile import HardwareProfile
from ..gpu.addresses import AddressSpace
from ..gpu.engine import Engine, ExecutionResult
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..rng import BufferedRNG, make_rng
from ..stress.strategies import NoStress, with_threads_range

#: Default per-kernel tick budget for applications (paper: 30 s timeout,
#: ~4x a native run).
APP_MAX_TICKS = 120_000

Checker = Callable[[MemorySystem], bool]
Launch = tuple[Kernel, LaunchConfig]


@dataclass(frozen=True)
class AppRun:
    """Outcome of one application execution."""

    ok: bool
    timed_out: bool
    result: ExecutionResult

    @property
    def erroneous(self) -> bool:
        """Paper semantics: post-condition failure or timeout."""
        return not self.ok


class Application(abc.ABC):
    """One case study of Table 4 (see module docstring)."""

    #: Short name used throughout the paper (e.g. ``cbe-dot``).
    name: str = ""
    #: One-line description (Table 4 column 2).
    description: str = ""
    #: Communication idiom (Table 4 column 3).
    communication: str = ""
    #: Post-condition (Table 4 column 4).
    postcondition: str = ""
    #: Fence sites present in the original application source.
    base_fences: frozenset[str] = frozenset()

    @abc.abstractmethod
    def sites(self) -> tuple[str, ...]:
        """All fence sites, in program order (paper Sec. 5: fences are
        sorted by code location for binary reduction)."""

    @abc.abstractmethod
    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        """Allocate and initialise buffers; return launches + checker."""

    # -- metadata used by tests and the experiment harness -------------
    def required_sites(self) -> frozenset[str]:
        """Ground-truth minimal fence set that suppresses the bug.

        This is *not* consulted by empirical fence insertion (which only
        runs tests); it exists so the test suite can validate what the
        insertion converges to.
        """
        return frozenset()

    def table4_row(self) -> dict[str, str]:
        return {
            "short name": self.name,
            "description": self.description,
            "communication": self.communication,
            "post-condition": self.postcondition,
        }


class ApplicationBatch:
    """Reusable execution context for many runs of one (app, chip, env).

    A campaign cell, a fence-insertion reduction or a cost-study loop
    performs thousands of :func:`run_application`-shaped executions that
    differ only in seed (and, for insertion, the fence set).  Everything
    else is run-invariant, so it is built exactly once here:

    * the :class:`AddressSpace` layout (bump allocation is
      deterministic, so every run sees the same buffer bases);
    * the application's host-initialised memory image (``setup`` writes
      are captured into a dict and replayed per run);
    * the kernel launches, post-condition checker and stressing
      geometry (scratchpad, thread ranges, warp counts);
    * one :class:`MemorySystem` (restored via ``reset``) and one
      :class:`Engine` (re-pointed at each run's generator).

    Per run only the seed-derived :class:`BufferedRNG`, the stress field
    it draws, and the thread coroutines (grid build inside the engine)
    are fresh.  The draw order is identical to a standalone
    :func:`run_application` — stress build, stress units, then the
    engine's tick stream — so ``run(seed)`` is bit-identical to a
    single run at the same seed (pinned by the app-path golden
    statistics in ``tests/test_golden_stats.py``).

    ``fence_sites`` is per-run rather than per-batch: fences only enter
    through the per-run kernel instantiation, which lets one batch serve
    an entire fence-insertion reduction across all its candidate sets.
    """

    def __init__(
        self,
        app: Application,
        chip: HardwareProfile,
        stress_spec=None,
        randomise: bool = False,
        max_ticks: int = APP_MAX_TICKS,
    ):
        if stress_spec is None:
            stress_spec = NoStress()
        self.app = app
        self.chip = chip
        self.randomise = randomise
        self.max_ticks = max_ticks

        # Buffers are allocated with cudaMalloc's 256-byte (64-word)
        # alignment, so distinct buffers occupy distinct patches.
        space = AddressSpace(default_align=64)
        # The memory system is created before setup so applications can
        # host-initialise through it; the construction-time generator is
        # a placeholder (``reset`` installs each run's stream before any
        # draw happens).
        mem = MemorySystem(chip, weak_scale=chip.app_sensitivity(app.name))
        self._launches, self._checker = app.setup(space, mem)
        self._scratch = space.alloc(
            "stress-scratchpad",
            4096,
            align=chip.patch_size * chip.n_channels,
        )
        self._image = dict(mem.mem)
        self._mem = mem

        self._app_warps = sum(
            cfg.grid_dim * cfg.warps_per_block for _k, cfg in self._launches
        )
        app_threads = max(cfg.n_threads for _k, cfg in self._launches)
        # Paper Sec. 4.2: stressing blocks are 15%-50% of the
        # application's blocks, so thread counts scale with the
        # application, not the chip.
        self._spec = with_threads_range(
            stress_spec,
            (max(8, app_threads // 6), max(16, app_threads // 2)),
        )
        self._engine = Engine(
            chip,
            mem,
            mem.rng,
            max_ticks=max_ticks,
            randomise=randomise,
        )

    def run(
        self, seed: int, fence_sites: frozenset[str] | None = None
    ) -> AppRun:
        """Execute the application once at ``seed``.

        ``fence_sites`` of ``None`` means "as shipped" (the
        application's ``base_fences``); pass an explicit set when
        experimenting with fence placements (Sec. 5 and Sec. 6).
        """
        app = self.app
        chip = self.chip
        if fence_sites is None:
            fence_sites = app.base_fences
        # BufferedRNG serves the memory system's and scheduler's scalar
        # draws from block pre-draws of the identical stream (see
        # repro.rng); delegated distributions sync the stream position
        # first, so every statistic matches the raw generator's.
        rng = BufferedRNG(make_rng(seed, "app", app.name, chip.short_name))
        mem = self._mem
        mem.reset(rng=rng)
        mem.mem.update(self._image)
        scratch = self._scratch
        spec = self._spec
        mem.set_stress(spec.build(chip, scratch.base, scratch.size, rng))

        engine = self._engine
        engine.rng = rng
        engine.n_stress_units = spec.stress_units(self._app_warps, rng)
        result = engine.run_all(
            self._launches, fence_sites=frozenset(fence_sites)
        )
        ok = (not result.timed_out) and bool(self._checker(mem))
        return AppRun(ok=ok, timed_out=result.timed_out, result=result)


def run_application(
    app: Application,
    chip: HardwareProfile,
    stress_spec=None,
    randomise: bool = False,
    seed: int = 0,
    fence_sites: frozenset[str] | None = None,
    max_ticks: int = APP_MAX_TICKS,
) -> AppRun:
    """Execute ``app`` once on ``chip`` under a testing environment.

    One-shot convenience over :class:`ApplicationBatch`; loops should
    build the batch themselves (or call :func:`run_application_batch`)
    so the per-run setup cost is paid once.
    """
    batch = ApplicationBatch(
        app,
        chip,
        stress_spec=stress_spec,
        randomise=randomise,
        max_ticks=max_ticks,
    )
    return batch.run(seed, fence_sites=fence_sites)


def run_application_batch(
    app: Application,
    chip: HardwareProfile,
    seeds,
    stress_spec=None,
    randomise: bool = False,
    fence_sites: frozenset[str] | None = None,
    max_ticks: int = APP_MAX_TICKS,
) -> list[AppRun]:
    """Execute ``app`` once per seed in ``seeds``, with setup done once.

    Each element equals the :func:`run_application` result at the same
    seed bit for bit; only the shared setup work is amortised.
    """
    batch = ApplicationBatch(
        app,
        chip,
        stress_spec=stress_spec,
        randomise=randomise,
        max_ticks=max_ticks,
    )
    return [batch.run(seed, fence_sites=fence_sites) for seed in seeds]
