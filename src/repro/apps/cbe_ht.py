"""cbe-ht: the concurrent hashtable of CUDA by Example (Tab. 4).

Threads insert keys into chained buckets, each bucket guarded by a
custom spinlock.  The weak memory bug mirrors cbe-dot's: the releasing
``atomicExch`` can overtake the buffered bucket-head store, so the next
inserter reads a stale head and one of the two entries is lost from the
chain — violating the post-condition that every inserted element is in
the final table.

A single fence after the bucket-head store (covering, by the fence's
drain semantics, the entry stores before it) hardens the application —
the paper's empirical insertion likewise reduced cbe-ht to one fence.
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch
from .sync import lock, unlock

N_KEYS = 96
N_BUCKETS = 8
GRID_DIM = 12
BLOCK_DIM = 8
WARP_SIZE = 8
#: Sentinel for "end of chain" (entry indices are stored +1).
NIL = 0

SITE_STORE_KEY = "cbe-ht:store-key"
SITE_LOAD_HEAD = "cbe-ht:load-head"
SITE_STORE_NEXT = "cbe-ht:store-next"
SITE_STORE_HEAD = "cbe-ht:store-head"


def hashtable_kernel(ctx: ThreadContext, keys, nxt, buckets, mutexes,
                     alloc, n):
    """Each thread inserts key ``global_tid`` into the hashtable."""
    gtid = ctx.global_tid()
    if gtid >= n:
        return
    key = gtid
    bucket = key % N_BUCKETS
    entry = yield from ctx.atomic_add(alloc, 0, 1)
    yield from ctx.store(keys, entry, key, site=SITE_STORE_KEY)
    yield from lock(ctx, mutexes, bucket)
    head = yield from ctx.load(buckets, bucket, site=SITE_LOAD_HEAD)
    yield from ctx.store(nxt, entry, head, site=SITE_STORE_NEXT)
    yield from ctx.store(buckets, bucket, entry + 1, site=SITE_STORE_HEAD)
    yield from unlock(ctx, mutexes, bucket)


class CbeHt(Application):
    """The cbe-ht case study."""

    name = "cbe-ht"
    description = "Concurrent hashtable from the book CUDA by Example"
    communication = (
        "Concurrent hashtable insertion protected by custom mutexes"
    )
    postcondition = (
        "All elements inserted into the hashtable are in the final "
        "hashtable"
    )
    base_fences = frozenset()

    def sites(self) -> tuple[str, ...]:
        return (
            SITE_STORE_KEY,
            SITE_LOAD_HEAD,
            SITE_STORE_NEXT,
            SITE_STORE_HEAD,
        )

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_HEAD})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        keys = space.alloc("keys", N_KEYS)
        nxt = space.alloc("next", N_KEYS)
        buckets = space.alloc("buckets", N_BUCKETS)
        mutexes = space.alloc("mutexes", N_BUCKETS)
        alloc = space.alloc("alloc", 1)

        mem.host_fill(keys, [-1] * N_KEYS)
        mem.host_fill(nxt, [NIL] * N_KEYS)
        mem.host_fill(buckets, [NIL] * N_BUCKETS)
        mem.host_fill(mutexes, [0] * N_BUCKETS)
        mem.host_write(alloc, 0, 0)

        kernel = Kernel(
            name="hashtable-insert",
            fn=hashtable_kernel,
            args=(keys, nxt, buckets, mutexes, alloc, N_KEYS),
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            found: set[int] = set()
            for b in range(N_BUCKETS):
                cursor = memory.host_read(buckets, b)
                steps = 0
                while cursor != NIL:
                    steps += 1
                    if steps > N_KEYS:  # corrupted chain (cycle)
                        return False
                    entry = cursor - 1
                    if not 0 <= entry < N_KEYS:
                        return False
                    key = memory.host_read(keys, entry)
                    if key in found:
                        return False
                    found.add(key)
                    cursor = memory.host_read(nxt, entry)
            return found == set(range(N_KEYS))

        return [(kernel, config)], check
