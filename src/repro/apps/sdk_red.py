"""sdk-red: the threadfence reduction of the CUDA SDK (Tab. 4).

Every block reduces its slice, stores the partial result to global
memory, and bumps an atomic counter; the block that sees the counter
reach ``gridDim - 1`` is last and combines all partials.  The SDK sample
places a ``__threadfence`` between the partial store and the counter
increment; without it (the ``sdk-red-nf`` variant) the increment can
overtake the buffered partial store, so the last block reads a stale
partial and produces a wrong total.

The paper observed no errors for sdk-red (its fence is sufficient) and
errors for sdk-red-nf under tuned stress.
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch

N = 1024
GRID_DIM = 8
BLOCK_DIM = 16
WARP_SIZE = 8

SITE_LOAD_IN = "sdk-red:load-in"
SITE_STORE_PARTIAL = "sdk-red:store-partial"
SITE_LOAD_PARTIAL = "sdk-red:load-partial"
SITE_STORE_OUT = "sdk-red:store-out"


def reduce_kernel(ctx: ThreadContext, data, partial, counter, out,
                  blocksum, n):
    """Two-phase reduction with a last-block atomic counter."""
    tid = ctx.global_tid()
    acc = 0
    while tid < n:
        v = yield from ctx.load(data, tid, site=SITE_LOAD_IN)
        acc += v
        tid += ctx.n_threads
    # Block-local reduction (shared memory in the SDK sample).
    yield from ctx.atomic_add(blocksum, ctx.block_id, acc)
    yield from ctx.syncthreads()
    if ctx.tid != 0:
        return
    mine = yield from ctx.load(blocksum, ctx.block_id)
    yield from ctx.store(partial, ctx.block_id, mine, site=SITE_STORE_PARTIAL)
    old = yield from ctx.atomic_add(counter, 0, 1)
    if old == ctx.grid_dim - 1:
        total = 0
        for b in range(ctx.grid_dim):
            p = yield from ctx.load(partial, b, site=SITE_LOAD_PARTIAL)
            total += p
        yield from ctx.store(out, 0, total, site=SITE_STORE_OUT)


class SdkRed(Application):
    """The sdk-red case study (pass ``with_fences=False`` for -nf)."""

    description = "Reduction routine from the CUDA 7 SDK"
    communication = (
        "Last block (via atomic counter) combines block-local results"
    )
    postcondition = "GPU result matches a CPU reference result"

    def __init__(self, with_fences: bool = True):
        self.with_fences = with_fences
        self.name = "sdk-red" if with_fences else "sdk-red-nf"
        self.base_fences = (
            frozenset({SITE_STORE_PARTIAL}) if with_fences else frozenset()
        )

    def sites(self) -> tuple[str, ...]:
        return (
            SITE_LOAD_IN,
            SITE_STORE_PARTIAL,
            SITE_LOAD_PARTIAL,
            SITE_STORE_OUT,
        )

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_PARTIAL})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        data = space.alloc("data", N)
        partial = space.alloc("partial", GRID_DIM)
        counter = space.alloc("counter", 1)
        out = space.alloc("out", 1)
        blocksum = space.alloc("blocksum", GRID_DIM)

        values = [(i % 11) + 1 for i in range(N)]
        mem.host_fill(data, values)
        mem.host_fill(partial, [0] * GRID_DIM)
        mem.host_write(counter, 0, 0)
        mem.host_write(out, 0, -1)
        mem.host_fill(blocksum, [0] * GRID_DIM)
        expected = sum(values)

        kernel = Kernel(
            name="reduce",
            fn=reduce_kernel,
            args=(data, partial, counter, out, blocksum, N),
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            return memory.host_read(out, 0) == expected

        return [(kernel, config)], check
