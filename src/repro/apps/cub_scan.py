"""cub-scan: prefix scan with decoupled lookback (CUB library, Tab. 4).

Blocks communicate partial results through two MP-style handshakes:

1. every block publishes its local *aggregate*, then sets an aggregate
   flag;
2. every block waits for its predecessor's flags, computes its exclusive
   prefix as ``prefix[b-1] + aggregate[b-1]``, publishes it, then sets a
   prefix flag.

CUB guards each publish with a ``__threadfence``; the ``cub-scan-nf``
variant removes both.  Without them the flag store can drain before the
published value, so the successor block reads a stale aggregate or
prefix and the scan is wrong.  The paper found exactly these two fences
by empirical insertion on the fence-free variant, and no errors in the
fenced original.
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch
from .sync import spin_until_equal

N = 1024
GRID_DIM = 12
BLOCK_DIM = 16
WARP_SIZE = 8

SITE_LOAD_IN = "cub-scan:load-in"
SITE_STORE_AGG = "cub-scan:store-aggregate"
SITE_STORE_FLAG_A = "cub-scan:store-flag-a"
SITE_LOAD_FLAG_A = "cub-scan:load-flag-a"
SITE_LOAD_AGG = "cub-scan:load-aggregate"
SITE_STORE_PREFIX = "cub-scan:store-prefix"
SITE_STORE_FLAG_P = "cub-scan:store-flag-p"
SITE_LOAD_FLAG_P = "cub-scan:load-flag-p"
SITE_LOAD_PREFIX = "cub-scan:load-prefix"
SITE_STORE_OUT = "cub-scan:store-out"


def scan_kernel(ctx: ThreadContext, data, agg, flag_a, prefix, flag_p,
                out, blocksum, n):
    """Decoupled-lookback exclusive scan over block aggregates."""
    tid = ctx.global_tid()
    acc = 0
    while tid < n:
        v = yield from ctx.load(data, tid, site=SITE_LOAD_IN)
        acc += v
        tid += ctx.n_threads
    yield from ctx.atomic_add(blocksum, ctx.block_id, acc)
    yield from ctx.syncthreads()
    b = ctx.block_id
    if ctx.tid == 0:
        # Handshake 1: thread 0 publishes the block aggregate.
        local = yield from ctx.load(blocksum, b)
        yield from ctx.store(agg, b, local, site=SITE_STORE_AGG)
        yield from ctx.store(flag_a, b, 1, site=SITE_STORE_FLAG_A)
        return
    if ctx.tid != 1:
        return
    # Handshake 2: thread 1 performs the lookback (CUB splits the
    # publish and lookback roles across threads of the block), consuming
    # the predecessor's aggregate as soon as its flag appears, then
    # chaining the exclusive prefix.
    if b == 0:
        excl = 0
    else:
        yield from spin_until_equal(ctx, flag_a, b - 1, 1,
                                    site=SITE_LOAD_FLAG_A)
        prev_agg = yield from ctx.load(agg, b - 1, site=SITE_LOAD_AGG)
        yield from spin_until_equal(ctx, flag_p, b - 1, 1,
                                    site=SITE_LOAD_FLAG_P)
        prev_prefix = yield from ctx.load(prefix, b - 1,
                                          site=SITE_LOAD_PREFIX)
        excl = prev_prefix + prev_agg
    yield from ctx.store(prefix, b, excl, site=SITE_STORE_PREFIX)
    yield from ctx.store(flag_p, b, 1, site=SITE_STORE_FLAG_P)
    yield from ctx.store(out, b, excl, site=SITE_STORE_OUT)


class CubScan(Application):
    """The cub-scan case study (pass ``with_fences=False`` for -nf)."""

    description = "Prefix scan from the CUB GPU library"
    communication = (
        "Blocks communicate partial results using MP-style handshake"
    )
    postcondition = "GPU result matches a CPU reference result"

    def __init__(self, with_fences: bool = True):
        self.with_fences = with_fences
        self.name = "cub-scan" if with_fences else "cub-scan-nf"
        self.base_fences = (
            frozenset({SITE_STORE_AGG, SITE_STORE_PREFIX})
            if with_fences
            else frozenset()
        )

    def sites(self) -> tuple[str, ...]:
        return (
            SITE_LOAD_IN,
            SITE_STORE_AGG,
            SITE_STORE_FLAG_A,
            SITE_LOAD_FLAG_P,
            SITE_LOAD_PREFIX,
            SITE_LOAD_FLAG_A,
            SITE_LOAD_AGG,
            SITE_STORE_PREFIX,
            SITE_STORE_FLAG_P,
            SITE_STORE_OUT,
        )

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_AGG, SITE_STORE_PREFIX})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        data = space.alloc("data", N)
        agg = space.alloc("aggregate", GRID_DIM)
        flag_a = space.alloc("flag-a", GRID_DIM)
        prefix = space.alloc("prefix", GRID_DIM)
        flag_p = space.alloc("flag-p", GRID_DIM)
        out = space.alloc("out", GRID_DIM)
        blocksum = space.alloc("blocksum", GRID_DIM)

        values = [(i % 9) + 1 for i in range(N)]
        mem.host_fill(data, values)
        for buf in (agg, flag_a, prefix, flag_p, blocksum):
            mem.host_fill(buf, [0] * GRID_DIM)
        mem.host_fill(out, [-1] * GRID_DIM)

        # Reference: with a grid-stride loop of stride n_threads, block b
        # accumulates exactly its strided slice; compute it faithfully.
        block_sums = [0] * GRID_DIM
        n_threads = GRID_DIM * BLOCK_DIM
        for i, v in enumerate(values):
            block_sums[(i % n_threads) // BLOCK_DIM] += v
        expected = [0] * GRID_DIM
        for b in range(1, GRID_DIM):
            expected[b] = expected[b - 1] + block_sums[b - 1]

        kernel = Kernel(
            name="scan",
            fn=scan_kernel,
            args=(data, agg, flag_a, prefix, flag_p, out, blocksum, N),
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            got = [memory.host_read(out, b) for b in range(GRID_DIM)]
            return got == expected

        return [(kernel, config)], check
