"""Device-side synchronisation primitives used by the case studies.

These mirror the custom spinlocks of the paper's applications (e.g. the
``lock``/``unlock`` of CUDA by Example, paper Fig. 1).  Note that, as in
CUDA, atomics are *not* fences: without an explicit ``__threadfence``
the critical section's ordinary stores can still be buffered when the
releasing ``atomicExch`` becomes visible — that is precisely the weak
memory bug these applications exhibit.

All functions are device generators: call with ``yield from``.
"""

from __future__ import annotations

from ..gpu.addresses import Buffer
from ..gpu.thread import ThreadContext

#: Spin back-off between lock attempts, in compute cycles.
_BACKOFF_CYCLES = 2


def lock(ctx: ThreadContext, mutex: Buffer, idx: int = 0):
    """Acquire a spinlock: ``while (atomicCAS(mutex, 0, 1) != 0);``."""
    while True:
        old = yield from ctx.atomic_cas(mutex, idx, 0, 1)
        if old == 0:
            return
        yield from ctx.compute(_BACKOFF_CYCLES)


def unlock(ctx: ThreadContext, mutex: Buffer, idx: int = 0,
           site: str | None = None):
    """Release a spinlock: ``atomicExch(mutex, 0)``.

    ``site`` allows fence instrumentation after the release (fence sites
    follow every memory access, including atomics).
    """
    yield from ctx.atomic_exch(mutex, idx, 0, site=site)


def spin_until_equal(ctx: ThreadContext, flag: Buffer, idx: int,
                     value, site: str | None = None):
    """Poll a flag until it holds ``value`` (MP-style handshake read)."""
    while True:
        seen = yield from ctx.load(flag, idx, site=site)
        if seen == value:
            return
        yield from ctx.compute(_BACKOFF_CYCLES)


def spin_until_at_least(ctx: ThreadContext, counter: Buffer, idx: int,
                        value, site: str | None = None):
    """Poll a counter until it reaches at least ``value``."""
    while True:
        seen = yield from ctx.load(counter, idx, site=site)
        if seen >= value:
            return
        yield from ctx.compute(_BACKOFF_CYCLES)
