"""ls-bh: Barnes-Hut N-body from the Lonestar GPU benchmarks (Tab. 4).

Three kernels, with fine-grained inter-block communication in each of
the first two ("various instances across three kernels", Tab. 4):

1. **Tree build** — cells are created on demand: a worker initialises the
   cell's node data with plain stores and *publishes* the cell with an
   ``atomicCAS`` on the cell slot (idiom 1: node-init).  Every body then
   reads its cell's node data and records its assignment, signalling
   completion through an atomic counter (idiom 2: cell-assign).  A
   summary block consumes the assignments in-kernel.
2. **Force computation** — mass blocks publish per-cell mass sums and
   bump a phase counter (idiom 3: mass-store); force blocks consume the
   sums, store per-body forces and bump a done counter (idiom 4:
   force-store); a mover block consumes the forces and writes updated
   positions.
3. **Checksum** — reduces the new positions (no cross-block races).

The original ls-bh carries fences for idioms 1, 3 and 4 but *not* for
idiom 2 — the paper found errors in ls-bh even with its fences, and the
fences inserted for ls-bh-nf were a superset of the originals.  Our
required set is the four idiom sites; the shipped set omits cell-assign.
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch
from .sync import spin_until_at_least

N_BODIES = 32
N_CELLS = 4
BLOCK_DIM = 8
WARP_SIZE = 8
#: Node data value for cell q (0 means "uninitialised" — stale reads of
#: a published but undrained node observe 0).
def _node_tag(quad: int) -> int:
    return quad + 100


SITE_NODE_INIT = "ls-bh:node-init"
SITE_LOAD_NODE = "ls-bh:load-node"
SITE_CELL_ASSIGN = "ls-bh:cell-assign"
SITE_LOAD_ASSIGN = "ls-bh:load-assign"
SITE_STORE_SUMMARY = "ls-bh:store-summary"
SITE_MASS_STORE = "ls-bh:mass-store"
SITE_LOAD_MASS = "ls-bh:load-mass"
SITE_FORCE_STORE = "ls-bh:force-store"
SITE_LOAD_FORCE = "ls-bh:load-force"
SITE_STORE_POS = "ls-bh:store-pos"


def _quadrant(x: int, y: int) -> int:
    return (2 if y >= 8 else 0) + (1 if x >= 8 else 0)


def build_kernel(ctx: ThreadContext, px, py, cell_slot, node_qid, assign,
                 assign_flag, summary, n):
    """Kernel 1: on-demand cell creation and body assignment.

    The summary block consumes assignments concurrently, as soon as each
    body's flag is published — the flag's ``atomicExch`` can overtake
    the buffered assignment store (idiom 2).
    """
    if ctx.block_id == ctx.grid_dim - 1:
        # Summary block: every thread promptly consumes a strided slice
        # of the assignments as their flags are published.
        copied: set[int] = set()
        mine = list(range(ctx.tid, n, ctx.block_dim))
        while len(copied) < len(mine):
            for i in mine:
                if i in copied:
                    continue
                ready = yield from ctx.load(assign_flag, i)
                if ready != 1:
                    continue
                a = yield from ctx.load(assign, i, site=SITE_LOAD_ASSIGN)
                yield from ctx.store(summary, i, a, site=SITE_STORE_SUMMARY)
                copied.add(i)
        return

    worker_threads = (ctx.grid_dim - 1) * ctx.block_dim
    i = ctx.global_tid()
    while i < n:
        x = yield from ctx.load(px, i)
        y = yield from ctx.load(py, i)
        quad = _quadrant(x, y)
        slot = yield from ctx.load(cell_slot, quad)
        if slot == 0:
            # Create the cell: initialise node data, then publish.
            yield from ctx.store(
                node_qid, quad, _node_tag(quad), site=SITE_NODE_INIT
            )
            yield from ctx.atomic_cas(cell_slot, quad, 0, quad + 1)
        while True:
            slot = yield from ctx.load(cell_slot, quad)
            if slot != 0:
                break
            yield from ctx.compute(2)
        tag = yield from ctx.load(node_qid, quad, site=SITE_LOAD_NODE)
        yield from ctx.store(assign, i, tag, site=SITE_CELL_ASSIGN)
        yield from ctx.atomic_exch(assign_flag, i, 1)
        i += worker_threads


def force_kernel(ctx: ThreadContext, assign, mass, cell_sum, force,
                 force_flag, px_new, px, k2phase, n):
    """Kernel 2: per-cell mass sums, then per-body forces, then moves."""
    b = ctx.block_id
    if b < N_CELLS:
        if ctx.tid != 0:
            return
        total = 0
        for i in range(n):
            a = yield from ctx.load(assign, i)
            if a == _node_tag(b):
                m = yield from ctx.load(mass, i)
                total += m
        yield from ctx.store(cell_sum, b, total, site=SITE_MASS_STORE)
        yield from ctx.atomic_add(k2phase, 0, 1)
        return
    if b < 2 * N_CELLS:
        quad = b - N_CELLS
        if ctx.tid != 0:
            return
        yield from spin_until_at_least(ctx, k2phase, 0, N_CELLS)
        for i in range(quad, n, N_CELLS):
            a = yield from ctx.load(assign, i)
            f = 0
            for q in range(N_CELLS):
                s = yield from ctx.load(cell_sum, q, site=SITE_LOAD_MASS)
                if _node_tag(q) != a:
                    f += s
            yield from ctx.store(force, i, f, site=SITE_FORCE_STORE)
            yield from ctx.atomic_exch(force_flag, i, 1)
        return
    # Mover block: every thread integrates a strided slice of bodies,
    # promptly, as each body's force is published.
    moved: set[int] = set()
    mine = list(range(ctx.tid, n, ctx.block_dim))
    while len(moved) < len(mine):
        for i in mine:
            if i in moved:
                continue
            ready = yield from ctx.load(force_flag, i)
            if ready != 1:
                continue
            f = yield from ctx.load(force, i, site=SITE_LOAD_FORCE)
            x = yield from ctx.load(px, i)
            yield from ctx.store(px_new, i, x + f, site=SITE_STORE_POS)
            moved.add(i)


def checksum_kernel(ctx: ThreadContext, px_new, chk, n):
    """Kernel 3: reduce the new positions (committed data; race free)."""
    i = ctx.global_tid()
    while i < n:
        v = yield from ctx.load(px_new, i)
        yield from ctx.atomic_add(chk, 0, v)
        i += ctx.n_threads


class LsBh(Application):
    """The ls-bh case study (pass ``with_fences=False`` for -nf)."""

    description = "Barnes-Hut N-body simulation from the Lonestar GPU suite"
    communication = "Various instances across three kernels"
    postcondition = (
        "Final particle positions match results from reference "
        "implementation"
    )

    def __init__(self, with_fences: bool = True):
        self.with_fences = with_fences
        self.name = "ls-bh" if with_fences else "ls-bh-nf"
        # The original's fences cover three of the four idioms; the
        # missing cell-assign fence is why ls-bh errors even as shipped.
        self.base_fences = (
            frozenset({SITE_NODE_INIT, SITE_MASS_STORE, SITE_FORCE_STORE})
            if with_fences
            else frozenset()
        )

    def sites(self) -> tuple[str, ...]:
        return (
            SITE_NODE_INIT,
            SITE_LOAD_NODE,
            SITE_CELL_ASSIGN,
            SITE_LOAD_ASSIGN,
            SITE_STORE_SUMMARY,
            SITE_MASS_STORE,
            SITE_LOAD_MASS,
            SITE_FORCE_STORE,
            SITE_LOAD_FORCE,
            SITE_STORE_POS,
        )

    def required_sites(self) -> frozenset[str]:
        return frozenset(
            {SITE_NODE_INIT, SITE_CELL_ASSIGN, SITE_MASS_STORE,
             SITE_FORCE_STORE}
        )

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        n = N_BODIES
        px = space.alloc("px", n)
        py = space.alloc("py", n)
        mass = space.alloc("mass", n)
        cell_slot = space.alloc("cell-slot", N_CELLS)
        node_qid = space.alloc("node-qid", N_CELLS)
        assign = space.alloc("assign", n)
        assign_flag = space.alloc("assign-flag", n)
        summary = space.alloc("summary", n)
        cell_sum = space.alloc("cell-sum", N_CELLS)
        force = space.alloc("force", n)
        px_new = space.alloc("px-new", n)
        k2phase = space.alloc("k2phase", 1)
        force_flag = space.alloc("force-flag", n)
        chk = space.alloc("chk", 1)

        xs = [(i * 7) % 16 for i in range(n)]
        ys = [(i * 5) % 16 for i in range(n)]
        ms = [(i % 4) + 1 for i in range(n)]
        mem.host_fill(px, xs)
        mem.host_fill(py, ys)
        mem.host_fill(mass, ms)
        mem.host_fill(cell_slot, [0] * N_CELLS)
        mem.host_fill(node_qid, [0] * N_CELLS)
        mem.host_fill(assign, [-1] * n)
        mem.host_fill(assign_flag, [0] * n)
        mem.host_fill(summary, [-1] * n)
        mem.host_fill(cell_sum, [0] * N_CELLS)
        mem.host_fill(force, [-1] * n)
        mem.host_fill(px_new, [-1] * n)
        mem.host_fill(force_flag, [0] * n)
        for buf in (k2phase, chk):
            mem.host_write(buf, 0, 0)

        # Pure-Python reference (the paper uses the conservatively fenced
        # variant as the reference for ls-bh).
        ref_assign = [_node_tag(_quadrant(x, y)) for x, y in zip(xs, ys)]
        ref_cell = [
            sum(m for m, a in zip(ms, ref_assign) if a == _node_tag(q))
            for q in range(N_CELLS)
        ]
        ref_force = [
            sum(s for q, s in enumerate(ref_cell) if _node_tag(q) != a)
            for a in ref_assign
        ]
        ref_pos = [x + f for x, f in zip(xs, ref_force)]
        ref_chk = sum(ref_pos)

        launches = [
            (
                Kernel(
                    "bh-build",
                    build_kernel,
                    (px, py, cell_slot, node_qid, assign, assign_flag,
                     summary, n),
                ),
                LaunchConfig(grid_dim=5, block_dim=BLOCK_DIM,
                             warp_size=WARP_SIZE),
            ),
            (
                Kernel(
                    "bh-force",
                    force_kernel,
                    (assign, mass, cell_sum, force, force_flag, px_new, px,
                     k2phase, n),
                ),
                LaunchConfig(grid_dim=2 * N_CELLS + 1, block_dim=BLOCK_DIM,
                             warp_size=WARP_SIZE),
            ),
            (
                Kernel("bh-checksum", checksum_kernel, (px_new, chk, n)),
                LaunchConfig(grid_dim=2, block_dim=BLOCK_DIM,
                             warp_size=WARP_SIZE),
            ),
        ]

        def check(memory: MemorySystem) -> bool:
            if any(
                memory.host_read(summary, i) != ref_assign[i]
                for i in range(n)
            ):
                return False
            if any(
                memory.host_read(px_new, i) != ref_pos[i] for i in range(n)
            ):
                return False
            return memory.host_read(chk, 0) == ref_chk

        return launches, check
