"""tpo-tm: the Tzeng-Patney-Owens task management framework (Tab. 4).

A shared task queue is guarded by a custom spinlock: workers dequeue a
task by reading the head index, loading the task, and storing the
incremented head before releasing the lock.  Each dequeued task is
"executed" by bumping its per-task execution count.

The weak memory bug: the releasing ``atomicExch`` can overtake the
buffered head store, so the next worker (on another SM) reads a stale
head and dequeues the *same* task again — one task is executed twice and,
because workers exit after the expected total number of executions,
another task is never executed.  The post-condition (every task executed
exactly once) catches both the duplicate and the omission.  One fence
after the head store hardens the application — the paper's insertion
likewise reduced tpo-tm to a single fence.
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch
from .sync import lock, unlock

N_TASKS = 48
GRID_DIM = 8
BLOCK_DIM = 8
WARP_SIZE = 8

SITE_LOAD_HEAD = "tpo-tm:load-head"
SITE_LOAD_ITEM = "tpo-tm:load-item"
SITE_STORE_HEAD = "tpo-tm:store-head"
SITE_LOAD_DONE = "tpo-tm:load-done"


def task_kernel(ctx: ThreadContext, items, head, mutex, counts, ndone, n):
    """Workers drain the task queue until all tasks are executed."""
    if ctx.tid != 0:
        return  # one worker per block, as in the original's task donation
    while True:
        finished = yield from ctx.load(ndone, 0, site=SITE_LOAD_DONE)
        if finished >= n:
            return
        yield from lock(ctx, mutex)
        h = yield from ctx.load(head, 0, site=SITE_LOAD_HEAD)
        if h >= n:
            yield from unlock(ctx, mutex)
            continue
        task = yield from ctx.load(items, h, site=SITE_LOAD_ITEM)
        yield from ctx.store(head, 0, h + 1, site=SITE_STORE_HEAD)
        yield from unlock(ctx, mutex)
        if 0 <= task < n:
            yield from ctx.atomic_add(counts, task, 1)
        yield from ctx.atomic_add(ndone, 0, 1)


class TpoTm(Application):
    """The tpo-tm case study."""

    name = "tpo-tm"
    description = (
        "Dynamic task management framework by Tzeng, Patney, and Owens"
    )
    communication = "Concurrent access to queues protected by custom mutexes"
    postcondition = "Expected number of tasks are executed"
    base_fences = frozenset()

    def sites(self) -> tuple[str, ...]:
        return (
            SITE_LOAD_DONE,
            SITE_LOAD_HEAD,
            SITE_LOAD_ITEM,
            SITE_STORE_HEAD,
        )

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_HEAD})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        items = space.alloc("items", N_TASKS)
        head = space.alloc("head", 1)
        mutex = space.alloc("mutex", 1)
        counts = space.alloc("counts", N_TASKS)
        ndone = space.alloc("ndone", 1)

        mem.host_fill(items, list(range(N_TASKS)))
        mem.host_write(head, 0, 0)
        mem.host_write(mutex, 0, 0)
        mem.host_fill(counts, [0] * N_TASKS)
        mem.host_write(ndone, 0, 0)

        kernel = Kernel(
            name="task-manager",
            fn=task_kernel,
            args=(items, head, mutex, counts, ndone, N_TASKS),
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            return all(
                memory.host_read(counts, t) == 1 for t in range(N_TASKS)
            )

        return [(kernel, config)], check
