"""Registry of the ten case studies (paper Table 4)."""

from __future__ import annotations

from ..errors import UnknownApplicationError
from .base import Application
from .cbe_dot import CbeDot
from .cbe_ht import CbeHt
from .ct_octree import CtOctree
from .cub_scan import CubScan
from .ls_bh import LsBh
from .sdk_red import SdkRed
from .tpo_tm import TpoTm

#: Table 4 order: seven distinct applications, with the -nf variants
#: next to their originals, as in the paper's campaign tables.
APP_ORDER = (
    "cbe-ht",
    "cbe-dot",
    "ct-octree",
    "tpo-tm",
    "sdk-red",
    "sdk-red-nf",
    "cub-scan",
    "cub-scan-nf",
    "ls-bh",
    "ls-bh-nf",
)

#: Applications that contain no fences (the Sec. 5 hardening study runs
#: on exactly these, omitting sdk-red, cub-scan and ls-bh).
FENCE_FREE_APPS = (
    "cbe-ht",
    "cbe-dot",
    "ct-octree",
    "tpo-tm",
    "sdk-red-nf",
    "cub-scan-nf",
    "ls-bh-nf",
)


def _build() -> dict[str, Application]:
    apps = [
        CbeHt(),
        CbeDot(),
        CtOctree(),
        TpoTm(),
        SdkRed(with_fences=True),
        SdkRed(with_fences=False),
        CubScan(with_fences=True),
        CubScan(with_fences=False),
        LsBh(with_fences=True),
        LsBh(with_fences=False),
    ]
    return {app.name: app for app in apps}


_APPS = _build()


def get_application(name: str) -> Application:
    """Look up a case study by its paper short name (e.g. ``cbe-dot``)."""
    try:
        return _APPS[name]
    except KeyError:
        raise UnknownApplicationError(name, sorted(_APPS)) from None


def all_applications() -> list[Application]:
    """The ten case studies in Table 4 order."""
    return [_APPS[name] for name in APP_ORDER]


def fence_free_applications() -> list[Application]:
    """The seven fence-free case studies used by the hardening study."""
    return [_APPS[name] for name in FENCE_FREE_APPS]


def table4_rows() -> list[dict[str, str]]:
    """Rows of the paper's Table 4 (the seven distinct applications)."""
    return [
        _APPS[name].table4_row()
        for name in APP_ORDER
        if not name.endswith("-nf")
    ]
