"""cbe-dot: the dot product of CUDA by Example (paper Fig. 1).

Each block accumulates a partial dot product (the book does this in
shared memory; we model the block-local reduction with an atomic into a
per-block cell, which has the same — safe — semantics), then the block
leader adds the partial into the global result ``*c`` inside a critical
section guarded by a custom spinlock.

The weak memory bug: the store to ``*c`` can still be buffered when the
releasing ``atomicExch`` becomes visible, so the next lock holder reads
a stale ``*c`` and the update is lost.  The fix the paper's empirical
fence insertion finds is a single ``__threadfence`` after the critical
store (equivalently, at the start of ``unlock``).

Fence sites follow the four global memory accesses of the original
kernel: the two input loads and the critical-section load/store of
``*c`` (shared-memory accesses take no device fences).
"""

from __future__ import annotations

from ..gpu.addresses import AddressSpace
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..gpu.thread import ThreadContext
from .base import Application, Checker, Launch
from .sync import lock, unlock

#: Problem size and launch geometry (small enough to simulate quickly,
#: large enough for real inter-block contention on the lock).
N = 1536
GRID_DIM = 12
BLOCK_DIM = 16
WARP_SIZE = 8

SITE_LOAD_A = "cbe-dot:load-a"
SITE_LOAD_B = "cbe-dot:load-b"
SITE_LOAD_C = "cbe-dot:load-c"
SITE_STORE_C = "cbe-dot:store-c"


def dot_kernel(ctx: ThreadContext, a, b, c, mutex, blocksum, n):
    """The ``dot`` kernel of the paper's Fig. 1."""
    tid = ctx.global_tid()
    temp = 0
    while tid < n:
        av = yield from ctx.load(a, tid, site=SITE_LOAD_A)
        bv = yield from ctx.load(b, tid, site=SITE_LOAD_B)
        temp += av * bv
        tid += ctx.n_threads
    # Block-local reduction (shared memory in the original).
    yield from ctx.atomic_add(blocksum, ctx.block_id, temp)
    yield from ctx.syncthreads()
    if ctx.tid == 0:
        partial = yield from ctx.load(blocksum, ctx.block_id)
        yield from lock(ctx, mutex)
        current = yield from ctx.load(c, 0, site=SITE_LOAD_C)
        yield from ctx.store(c, 0, current + partial, site=SITE_STORE_C)
        yield from unlock(ctx, mutex)


class CbeDot(Application):
    """The cbe-dot case study."""

    name = "cbe-dot"
    description = "Dot product routine from the book CUDA by Example"
    communication = (
        "Global final reduction across blocks protected by a custom mutex"
    )
    postcondition = "GPU result matches a CPU reference result"
    base_fences = frozenset()

    def sites(self) -> tuple[str, ...]:
        return (SITE_LOAD_A, SITE_LOAD_B, SITE_LOAD_C, SITE_STORE_C)

    def required_sites(self) -> frozenset[str]:
        return frozenset({SITE_STORE_C})

    def setup(
        self, space: AddressSpace, mem: MemorySystem
    ) -> tuple[list[Launch], Checker]:
        a = space.alloc("a", N)
        b = space.alloc("b", N)
        c = space.alloc("c", 1)
        mutex = space.alloc("mutex", 1)
        blocksum = space.alloc("blocksum", GRID_DIM)

        a_vals = [(i % 7) + 1 for i in range(N)]
        b_vals = [(i % 5) + 1 for i in range(N)]
        mem.host_fill(a, a_vals)
        mem.host_fill(b, b_vals)
        mem.host_write(c, 0, 0)
        mem.host_write(mutex, 0, 0)
        mem.host_fill(blocksum, [0] * GRID_DIM)

        expected = sum(x * y for x, y in zip(a_vals, b_vals))
        kernel = Kernel(
            name="dot", fn=dot_kernel, args=(a, b, c, mutex, blocksum, N)
        )
        config = LaunchConfig(
            grid_dim=GRID_DIM, block_dim=BLOCK_DIM, warp_size=WARP_SIZE
        )

        def check(memory: MemorySystem) -> bool:
            return memory.host_read(c, 0) == expected

        return [(kernel, config)], check
