"""The ten application case studies (paper Sec. 4.1, Table 4).

Seven distinct applications, three of which ship with fence instructions
(`sdk-red`, `cub-scan`, `ls-bh`); removing those fences yields the
``-nf`` variants, for ten case studies in total.  Each application is a
set of kernels over the simulated GPU plus a functional post-condition
and an enumeration of fence *sites* (one per global memory access) used
by empirical fence insertion.
"""

from .base import (
    Application,
    ApplicationBatch,
    AppRun,
    run_application,
    run_application_batch,
)
from .registry import all_applications, get_application, table4_rows

__all__ = [
    "Application",
    "ApplicationBatch",
    "AppRun",
    "run_application",
    "run_application_batch",
    "all_applications",
    "get_application",
    "table4_rows",
]
