"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    rows: Sequence[dict[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(r.get(col, ""))) for r in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)
