"""Rendering and per-experiment regeneration harness."""

from .tables import render_table
from .figures import render_bars, render_series
from .experiments import EXPERIMENTS, run_experiment

__all__ = [
    "render_table",
    "render_bars",
    "render_series",
    "EXPERIMENTS",
    "run_experiment",
]
