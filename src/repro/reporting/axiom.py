"""Rendering for the axiomatic oracle and the synthesis pass.

``gpu-wmm axiom <test>`` prints the verdict table — every conceivable
final state classified SC / weak / forbidden, with a witness execution
per allowed state — and ``gpu-wmm synth`` prints the synthesized tests
with ready-to-register IR, the backend soundness check and an optional
cross-chip survey.
"""

from __future__ import annotations

from ..axiom.model import (
    VERDICT_FORBIDDEN,
    VERDICT_SC,
    VERDICT_WEAK,
    AxiomReport,
    classify,
)
from ..axiom.synth import SynthReport
from ..litmus.ir import format_condition
from ..litmus.tests import LitmusTest
from ..litmus.runner import observed_outcomes
from ..stress.strategies import TunedStress
from ..tuning.pipeline import shipped_params
from .tables import render_table

_VERDICT_LABEL = {
    VERDICT_SC: "SC",
    VERDICT_WEAK: "WEAK",
    VERDICT_FORBIDDEN: "FORBIDDEN",
}

_CONDITION_GLOSS = {
    VERDICT_WEAK: (
        "a genuine relaxed-memory observable (weak-allowed, "
        "SC-unreachable)"
    ),
    VERDICT_FORBIDDEN: (
        "a negative check: no allowed execution satisfies it, every "
        "backend must stay silent"
    ),
    "sc-reachable": (
        "VACUOUS: already reachable under SC — not a weak-memory test"
    ),
}


def render_axiom_report(report: AxiomReport) -> str:
    """The verdict table for one test, with witnesses and the
    condition verdict."""
    test = report.test
    rows = []
    for outcome in report.outcomes:
        rows.append({
            "state": outcome.format_state(),
            "verdict": _VERDICT_LABEL[outcome.verdict],
            "witness": outcome.witness.format() if outcome.witness else "-",
        })
    lines = [
        f"{test.name}: {test.description}",
        f"  {test.pretty()}",
        "",
        render_table(
            rows,
            columns=("state", "verdict", "witness"),
            title=f"candidate final states ({len(rows)})",
        ),
        "",
        f"forbidden condition {format_condition(test.forbidden)}: "
        f"{_CONDITION_GLOSS[report.condition]}",
        "SC cross-check (full-fence model == brute-force enumerator): "
        + ("agree" if report.sc_agrees else "DISAGREE"),
    ]
    return "\n".join(lines)


def render_axiom_summary(tests) -> str:
    """One row per test: state counts per verdict and the condition
    verdict (the ``gpu-wmm axiom --all`` view)."""
    rows = []
    for test in tests:
        report = classify(test)
        sc = len(report.sc_states)
        weak_only = len(report.weak_states) - sc
        forbidden = len(report.forbidden_states)
        rows.append({
            "test": test.name,
            "sc": sc,
            "weak-only": weak_only,
            "forbidden": forbidden,
            "condition": report.condition,
            "sc-check": "agree" if report.sc_agrees else "DISAGREE",
        })
    return render_table(
        rows,
        columns=(
            "test", "sc", "weak-only", "forbidden", "condition", "sc-check"
        ),
        title="axiomatic verdicts (registry)",
    )


def emit_ir(test: LitmusTest) -> str:
    """Render a synthesized test as ready-to-register Python IR."""
    op_fmt = {
        "st": lambda ins: f"st({ins[1]!r}, {ins[2]})",
        "ld": lambda ins: f"ld({ins[1]!r}, {ins[2]!r})",
        "rmw": lambda ins: f"rmw({ins[1]!r}, {ins[2]!r}, {ins[3]})",
        "fence": lambda ins: "fence()",
    }

    def cond_src(cond) -> str:
        name = type(cond).__name__
        if name == "RegEq":
            return f"RegEq({cond.reg!r}, {cond.value})"
        if name == "LocEq":
            return f"LocEq({cond.loc!r}, {cond.value})"
        terms = ", ".join(cond_src(t) for t in cond.terms)
        return f"{name}({terms})"

    lines = [
        "LitmusTest(",
        f"    name={test.name!r},",
        f"    description={test.description!r},",
        "    threads=(",
    ]
    for program in test.threads:
        body = ", ".join(op_fmt[ins[0]](ins) for ins in program)
        lines.append(f"        ({body}),")
    lines += [
        "    ),",
        f"    forbidden={cond_src(test.forbidden)},",
        ")",
    ]
    return "\n".join(lines)


def synth_survey(tests, chips, executions: int, seed: int = 7) -> str:
    """Differential cross-chip survey of synthesized tests: weak rounds
    per chip on the direct backend at tuned stress."""
    rows = []
    for test in tests:
        row: dict = {"test": test.name}
        for chip in chips:
            spec = TunedStress(shipped_params(chip.short_name))
            obs = observed_outcomes(
                chip, test, 2 * chip.patch_size, spec, executions,
                seed=seed,
            )
            row[chip.short_name] = f"{obs.weak}/{executions}"
        rows.append(row)
    return render_table(
        rows,
        title=(
            f"cross-chip survey (weak executions / {executions}, "
            f"direct backend, tuned stress, seed {seed})"
        ),
    )


def render_synth_report(report: SynthReport, show_ir: bool = True) -> str:
    """Enumeration statistics plus each emitted test (novel tests with
    their ready-to-register IR)."""
    cfg = report.config
    lines = [
        f"synthesis bounds: {cfg.threads} threads, <= {cfg.max_ops} memory "
        f"ops/thread, {cfg.locations} locations, values 1..{cfg.values}, "
        f"rmw {'on' if cfg.rmw else 'off'}, "
        f"fences {'on' if cfg.fences else 'off'}",
        f"programs enumerated: {report.programs_enumerated}",
        f"  after communication pruning: {report.programs_pruned}",
        f"  after symmetry dedup: {report.programs_deduped}",
        f"  with a weak-allowed, SC-unreachable outcome: "
        f"{report.distinguishing}",
        f"emitted tests: {len(report.tests)}",
        f"novel tests: {len(report.novel)} "
        f"(not symmetry-equivalent to any registry test)",
        "",
    ]
    rows = [
        {
            "name": s.test.name,
            "program": s.test.pretty(),
            "registry": s.matches or "NOVEL",
        }
        for s in report.tests
    ]
    lines.append(render_table(
        rows, columns=("name", "program", "registry"),
        title="synthesized tests",
    ))
    if show_ir and report.novel:
        lines += ["", "ready-to-register IR (novel tests):"]
        for s in report.novel:
            lines += ["", emit_ir(s.test)]
    return "\n".join(lines)
