"""ASCII figure rendering (bar rows for Fig. 3, series for Figs. 4-5)."""

from __future__ import annotations

from collections.abc import Sequence

_BLOCKS = " .:-=+*#%@"


def render_bars(
    values: Sequence[int | float],
    label: str = "",
    width_per_cell: int = 1,
) -> str:
    """One row of vertical-bar glyphs, scaled to the row maximum.

    This is the textual analogue of one (test, distance) strip of the
    paper's Fig. 3: one glyph per stressed scratchpad location.
    """
    peak = max(values) if values else 0
    if peak <= 0:
        body = " " * (len(values) * width_per_cell)
    else:
        cells = []
        for v in values:
            idx = 0 if v <= 0 else 1 + int((len(_BLOCKS) - 2) * v / peak)
            cells.append(_BLOCKS[idx] * width_per_cell)
        body = "".join(cells)
    return f"{label:>12s} |{body}| peak={peak}"


def render_series(
    series: dict[str, Sequence[tuple[float, float]]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as aligned columns (Fig. 4/5 data)."""
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>8s}  " + "  ".join(
        f"{name:>10s}" for name in series
    ))
    xs = sorted({x for pts in series.values() for x, _y in pts})
    lookup = {
        name: {x: y for x, y in pts} for name, pts in series.items()
    }
    for x in xs:
        cells = []
        for name in series:
            y = lookup[name].get(x)
            cells.append(f"{y:>10.6g}" if y is not None else " " * 10)
        lines.append(f"{x:>8g}  " + "  ".join(cells))
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)
