"""Per-experiment regeneration harness.

Each experiment id (table/figure of the paper) maps to a function that
reruns the experiment at a given scale and returns printable text.  The
benchmarks under ``benchmarks/`` and the CLI both route through here,
so every artefact of the paper is regenerable from one entry point:

>>> from repro.reporting.experiments import run_experiment
>>> print(run_experiment("table1"))              # doctest: +SKIP

Every experiment accepts a :class:`~repro.store.RunLedger` (CLI:
``--out DIR`` / ``--resume DIR``).  Results stream into the ledger as
they complete, already-ledgered keys are decoded instead of re-run, and
a ledger holding every key of an experiment regenerates the table or
figure with **zero** simulation runs — the paper's own workflow of
deriving tables from archived campaign logs.
"""

from __future__ import annotations

import os

from ..apps.registry import all_applications, table4_rows
from ..chips.registry import all_chips, get_chip, table1_rows
from ..costs.report import figure5_points, overhead_summary
from ..hardening.insertion import empirical_fence_insertion
from ..litmus import BACKENDS
from ..litmus.tests import ALL_TESTS, TUNING_TESTS, get_test
from ..litmus.units import litmus_unit
from ..stress.strategies import NoStress, TunedStress
from ..errors import LedgerError
from ..parallel import ParallelConfig, resolve_config
from ..scale import DEFAULT, Scale, get_scale
from ..store import RunLedger, litmus_key, stress_token, submit_units
from ..store import records as store_records
from ..stress.environment import ENVIRONMENT_ORDER
from ..stress.sequences import format_sequence
from ..testing.campaign import run_campaign
from ..testing.summary import table5_summary
from ..tuning.access import score_sequences, select_sequence
from ..tuning.patches import critical_patch_size, scan_patches
from ..tuning.pipeline import shipped_params, tune_chip
from ..tuning.spread import score_spreads
from .figures import render_bars, render_series
from .tables import render_table


def table1(
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> str:
    """Table 1: the seven studied GPUs."""
    return render_table(
        table1_rows(), title="Table 1: the seven Nvidia GPUs we study"
    )


def figure3(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] = ("Titan", "C2075", "980"),
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Figure 3: patch finding bar strips for MP and LB."""
    out = []
    for name in chips:
        chip = get_chip(name)
        scan = scan_patches(
            chip, scale, seed, parallel=parallel, ledger=ledger,
            submit=submit,
        )
        patch, _per_test = critical_patch_size(scan)
        out.append(
            f"Figure 3 ({chip.name}): critical patch size {patch} "
            f"(truth: hidden hardware parameter)"
        )
        shown = [d for d in scan.distances if d in
                 (0, chip.patch_size, 2 * chip.patch_size)] or \
            list(scan.distances[:3])
        for test in ("MP", "LB"):
            for d in shown:
                out.append(
                    render_bars(scan.row(test, d), label=f"{test} d={d}")
                )
        out.append("")
    return "\n".join(out)


def table2(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] | None = None,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Table 2: tuned stressing parameters per chip (full pipeline)."""
    rows = []
    names = chips if chips is not None else tuple(
        c.short_name for c in all_chips()
    )
    for name in names:
        result = tune_chip(
            get_chip(name), scale, seed, parallel=parallel, ledger=ledger,
            submit=submit,
        )
        row = result.table2_row()
        truth = shipped_params(name)
        row["matches paper"] = (
            "yes"
            if (
                result.config.patch_size == truth.patch_size
                and result.config.sequence == truth.sequence
                and result.config.spread == truth.spread
            )
            else "no"
        )
        rows.append(row)
    return render_table(
        rows, title="Table 2: stressing parameters discovered per chip"
    )


def table3(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chip: str = "Titan",
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Table 3: access-sequence ranking snippet for Titan."""
    profile = get_chip(chip)
    scores = score_sequences(
        profile, profile.patch_size, scale, seed, parallel=parallel,
        ledger=ledger, submit=submit,
    )
    best = select_sequence(scores)
    out = [
        f"Table 3: snippet of sigmas and scores for {chip} "
        f"(selected: {format_sequence(best)})"
    ]
    for test, rows in scores.table3_rows().items():
        out.append(render_table(rows, title=f"-- {test} --"))
    return "\n".join(out)


def figure4(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] = ("980", "K20"),
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Figure 4: spread-finding score curves."""
    out = []
    for name in chips:
        chip = get_chip(name)
        scores = score_spreads(
            chip, chip.patch_size, chip.best_sequence, scale, seed,
            parallel=parallel, ledger=ledger, submit=submit,
        )
        series = {
            test.name: [
                (float(m), float(s))
                for m, s in scores.series(test.name)
            ]
            for test in TUNING_TESTS
        }
        out.append(
            render_series(
                series,
                title=f"Figure 4 ({chip.name}): score vs spread",
                x_label="spread",
                y_label="weak behaviours observed",
            )
        )
        out.append("")
    return "\n".join(out)


def table4(
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> str:
    """Table 4: the application case studies."""
    return render_table(
        table4_rows(), title="Table 4: the case studies we consider"
    )


def table5(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] | None = None,
    environments: tuple[str, ...] | None = None,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Table 5: testing-environment effectiveness grid."""
    chip_objs = [
        get_chip(c)
        for c in (chips or tuple(c.short_name for c in all_chips()))
    ]
    env_names = list(environments or ENVIRONMENT_ORDER)
    cells = run_campaign(
        chip_objs, environments=env_names, scale=scale, seed=seed,
        parallel=parallel, ledger=ledger, submit=submit,
    )
    table = table5_summary(cells)
    rows = []
    for chip in chip_objs:
        row: dict[str, object] = {"chip": chip.short_name}
        for env in env_names:
            cell = table.get((chip.short_name, env))
            row[env] = str(cell) if cell else "-"
        rows.append(row)
    return render_table(
        rows,
        title=(
            "Table 5: effective/observed application counts per "
            "environment"
        ),
    )


def table6(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chip: str = "Titan",
    apps: tuple[str, ...] | None = None,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> str:
    """Table 6: empirical fence insertion results."""
    from ..apps.registry import fence_free_applications, get_application

    targets = (
        [get_application(a) for a in apps]
        if apps
        else fence_free_applications()
    )
    rows = []
    for app in targets:
        result = empirical_fence_insertion(
            app, get_chip(chip), scale=scale, seed=seed,
            parallel=parallel, ledger=ledger,
        )
        row = result.table6_row()
        row["reduced fences"] = ", ".join(sorted(result.reduced))
        rows.append(row)
    return render_table(
        rows, title=f"Table 6: empirical fence insertion on {chip}"
    )


def figure5(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] | None = None,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> str:
    # Cost measurement (Sec. 6) repeats runs until enough *passing*
    # executions accumulate, a sequentially dependent loop; it stays
    # serial and accepts ``parallel`` only for interface uniformity.
    """Figure 5: fence cost scatter data and overhead summary."""
    chip_objs = [
        get_chip(c)
        for c in (chips or tuple(c.short_name for c in all_chips()))
    ]
    apps = [a for a in all_applications() if not a.name.endswith("-nf")]
    points = figure5_points(
        apps, chip_objs, runs=max(5, scale.campaign_runs // 4),
        seed=seed, ledger=ledger,
    )
    rows = []
    for p in points:
        rows.append(
            {
                "chip": p.chip,
                "app": p.app,
                "strategy": p.strategy.value,
                "no-fence ms": round(p.baseline_runtime_ms, 3),
                "fenced ms": round(p.fenced_runtime_ms, 3),
                "runtime +%": round(p.runtime_overhead_pct, 1),
                "no-fence J": (
                    round(p.baseline_energy_j, 3)
                    if p.baseline_energy_j is not None
                    else "-"
                ),
                "fenced J": (
                    round(p.fenced_energy_j, 3)
                    if p.fenced_energy_j is not None
                    else "-"
                ),
            }
        )
    out = [render_table(rows, title="Figure 5: cost of fences (points)")]
    summary_rows = [
        {"strategy": strategy, **{k: round(v, 1) for k, v in s.items()}}
        for strategy, s in overhead_summary(points).items()
    ]
    out.append(render_table(summary_rows, title="Overhead summary"))
    return "\n".join(out)


def survey(
    scale: Scale = DEFAULT,
    seed: int = 0,
    chips: tuple[str, ...] = ("K20", "Titan", "980"),
    tests: tuple[str, ...] | None = None,
    backend: str | None = None,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit=None,
) -> str:
    """Extended litmus survey: the full test family across chips.

    Goes beyond the paper's MP/LB/SB triple: for every registered test
    (fenced variants, coherence tests, 3/4-thread idioms) and every
    selected chip, runs the chosen backend natively and under the
    chip's tuned ``sys-str`` stressing at distance ``2 x patch size``.
    Fenced variants should show strictly lower tuned rates than their
    unfenced bases; coherence tests should stay silent everywhere.

    ``backend`` picks the litmus runner (``direct``, ``engine`` or
    ``vector``); ``None`` defers to ``scale.litmus_backend``.  Ledger
    keys carry the backend, so surveys on different backends never
    satisfy each other's resume.

    The survey fans out as one litmus work unit per (test, chip,
    stressing) cell — across local pool workers under ``parallel``,
    across machines under a distributed ``submit`` — with identical
    tables either way (each cell runs at the experiment seed
    regardless of placement).
    """
    selected = (
        [get_test(name) for name in tests] if tests else list(ALL_TESTS)
    )
    if backend is None:
        backend = scale.litmus_backend
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown litmus backend {backend!r}; "
            f"choose from {', '.join(BACKENDS)}"
        )
    executions = max(20, scale.executions)
    chip_objs = [get_chip(c) for c in chips]
    config = resolve_config(parallel, scale)
    units = []
    for test in selected:
        for chip in chip_objs:
            distance = 2 * chip.patch_size
            for spec in (
                NoStress(),
                TunedStress(shipped_params(chip.short_name)),
            ):
                units.append(
                    litmus_unit(
                        key=litmus_key(
                            chip.short_name, test.name, stress_token(spec),
                            distance, executions, seed, backend=backend,
                        ),
                        chip=chip.short_name,
                        test=test.name,
                        distance=distance,
                        stress_spec=spec,
                        executions=executions,
                        seed=seed,
                        backend=backend,
                    )
                )
    results = [
        store_records.decode_litmus(record)
        for record in submit_units(units, config, ledger, submit)
    ]
    rows = []
    cursor = iter(results)
    for test in selected:
        row: dict[str, object] = {
            "test": test.name,
            "threads": test.n_threads,
        }
        for chip in chip_objs:
            native = next(cursor)
            tuned = next(cursor)
            row[f"{chip.short_name} no-str"] = native.weak
            row[f"{chip.short_name} sys-str"] = tuned.weak
        rows.append(row)
    return render_table(
        rows,
        title=(
            "Litmus survey: weak outcomes per test "
            f"(out of {executions} executions, d = 2 x patch size, "
            f"{backend} backend)"
        ),
    )


EXPERIMENTS = {
    "table1": table1,
    "survey": survey,
    "fig3": figure3,
    "table2": table2,
    "table3": table3,
    "fig4": figure4,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig5": figure5,
}

#: Experiments whose work fans out as location-independent units and so
#: can be served to distributed workers (``--dist`` / ``submit``).  The
#: rest are either pure table renders (table1, table4) or sequentially
#: dependent loops (table6 insertion, fig5 cost measurement).
DISTRIBUTABLE = {"survey", "fig3", "table2", "table3", "fig4", "table5"}


def open_ledger(
    out: str | None = None, resume: str | None = None
) -> RunLedger | None:
    """Resolve the ``--out`` / ``--resume`` pair to a ledger (or None).

    ``resume`` opens an existing ledger (an error when absent, so typos
    never silently start a cold run); ``out`` opens or creates one.
    Passing both is allowed when they name the same directory.
    """
    if out is not None and resume is not None and (
        os.path.abspath(out) != os.path.abspath(resume)
    ):
        raise LedgerError(
            f"--out {out!r} and --resume {resume!r} name different "
            "directories; a run reads and writes one ledger"
        )
    if resume is not None:
        return RunLedger.open(resume)
    if out is not None:
        return RunLedger.open_or_create(out)
    return None


def run_experiment(
    name: str,
    scale: str | Scale = "smoke",
    seed: int = 0,
    jobs: int | None = None,
    out: str | None = None,
    resume: str | None = None,
    dist: int | None = None,
    units_per_lease: int | None = None,
    lease_target_s: float | None = None,
    submit=None,
    **kwargs,
) -> str:
    """Regenerate one paper artefact by id (see ``EXPERIMENTS``).

    ``jobs`` shards the experiment's run loops over worker processes
    (``0`` = one per CPU); the regenerated artefact is identical at any
    job count.  ``None`` defers to the scale's ``jobs`` knob.

    ``out`` / ``resume`` attach a run ledger (see :mod:`repro.store`):
    completed results persist as they stream in, already-ledgered keys
    are never re-simulated, and a complete ledger regenerates the
    artefact without a single simulation run — interrupted campaigns
    resume bit-identically.

    ``dist`` serves the experiment's work units to that many local
    worker subprocesses through the lease coordinator (see
    :mod:`repro.dist`); ``submit`` injects a fully configured submit
    backend instead (e.g. a :class:`~repro.dist.DistributedSubmit`
    awaiting remote workers).  Only ``DISTRIBUTABLE`` experiments
    accept either; the artefact is byte-identical to a local run.
    ``None`` defers to the scale's ``dist_workers`` knob.

    ``units_per_lease`` fixes the distributed lease batch size (None,
    the default, uses the coordinator's adaptive controller);
    ``lease_target_s`` sets the compute duration one adaptive lease
    aims for.  Both apply only to the ``dist`` path — an injected
    ``submit`` backend carries its own configuration.
    """
    if isinstance(scale, str):
        scale = get_scale(scale)
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    parallel = resolve_config(
        ParallelConfig(jobs=jobs) if jobs is not None else None, scale
    )
    workers = dist if dist is not None else scale.dist_workers
    if submit is None and workers:
        from ..dist import DEFAULT_TARGET_LEASE_S, DistributedSubmit

        submit = DistributedSubmit(
            workers=workers,
            units_per_lease=units_per_lease,
            lease_target_s=(
                lease_target_s
                if lease_target_s is not None
                else DEFAULT_TARGET_LEASE_S
            ),
        )
    if submit is not None:
        if name not in DISTRIBUTABLE:
            raise ValueError(
                f"experiment {name!r} cannot run distributed; "
                f"distributable: {', '.join(sorted(DISTRIBUTABLE))}"
            )
        kwargs["submit"] = submit
    ledger = open_ledger(out, resume)
    return fn(
        scale=scale, seed=seed, parallel=parallel, ledger=ledger, **kwargs
    )
