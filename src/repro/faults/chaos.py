"""The chaos harness: run a real experiment under a fault plan and
prove the output unharmed.

:func:`run_chaos` is the executable failure-model contract (CLI:
``gpu-wmm chaos``).  It renders the experiment serially (fault-free
reference), then re-runs it distributed with the plan armed on both
sides of the wire — the coordinator in-process, every spawned worker
via ``--faults`` — and drives the full hardening loop end to end:

* poison units exhaust their attempt budgets, are quarantined by the
  coordinator, and are *repaired* by :class:`ChaosSubmit` — re-executed
  serially with injection suppressed — so the experiment still renders;
* an injected coordinator restart severs every worker mid-campaign;
  workers ride it out with backoff-and-reconnect;
* injected ledger corruption is detected by
  :func:`~repro.store.ledger.verify_ledger`, repaired by
  :func:`~repro.store.ledger.salvage_ledger`, and the destroyed
  records are re-run through a resumed render.

The verdict is byte equality: the chaos render, and the post-salvage
resumed render, must equal the serial reference exactly.  Determinism
is part of the contract — the same plan and seed produce the same
injection trace (every firing logs its site and draw index), so a
chaos failure reproduces like any other bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..errors import QuarantineError, ReproError
from ..parallel.plan import WorkUnit, execute_unit
from .plan import FaultPlan
from .runtime import install, suppress_faults, uninstall


@dataclass
class ChaosSubmit:
    """A submit backend that survives quarantine.

    Wraps any distributable backend (normally a
    :class:`~repro.dist.DistributedSubmit`).  When the coordinator
    finishes with units parked in quarantine, the healthy records are
    kept and each quarantined unit is re-executed serially in this
    process with fault injection suppressed — proving the unit itself
    was sound and only the injected faults poisoned it — so the
    experiment completes with full coverage.  Every repair is recorded
    on ``quarantined`` (content key -> coordinator's reason) for the
    chaos report.
    """

    inner: Callable
    log: Callable[[str], None] = lambda message: None
    quarantined: dict = field(default_factory=dict)

    def __call__(
        self,
        units: Sequence[WorkUnit],
        config,
        on_record: Callable | None,
    ) -> list:
        try:
            return self.inner(units, config, on_record)
        except QuarantineError as exc:
            self.quarantined.update(exc.quarantined)
            merged = {record.key: record for record in exc.records}
            results = [merged.get(unit.key) for unit in units]
            with suppress_faults():
                for index, unit in enumerate(units):
                    if results[index] is not None:
                        continue
                    self.log(
                        f"repairing quarantined unit {unit.key!r} "
                        "serially (faults suppressed)"
                    )
                    record = execute_unit(unit)
                    results[index] = record
                    if on_record is not None:
                        on_record(index, record)
            return results


@dataclass
class ChaosReport:
    """Everything :func:`run_chaos` learned, for rendering and tests."""

    experiment: str
    plan: FaultPlan
    serial_text: str
    chaos_text: str
    #: Render after ledger salvage + resume; equals ``chaos_text`` when
    #: no ledger was attached.
    final_text: str
    identical: bool
    quarantined: dict
    #: The coordinator-side injection trace (site/kind/token/draw).
    trace: list
    ledger_problems: list
    salvage: dict | None

    def summary(self) -> str:
        lines = [
            f"chaos run: experiment={self.experiment} "
            f"plan={self.plan.name!r} seed={self.plan.seed}",
            f"  coordinator-side faults fired: {len(self.trace)}",
            f"  units quarantined and repaired: {len(self.quarantined)}",
        ]
        for key, reason in sorted(self.quarantined.items()):
            lines.append(f"    {key}: {reason}")
        if self.ledger_problems:
            lines.append(
                f"  ledger problems detected: {len(self.ledger_problems)}"
            )
            if self.salvage is not None:
                lines.append(
                    "  salvage: "
                    f"{len(self.salvage['quarantined_segments'])} "
                    f"segment(s) quarantined, "
                    f"{self.salvage['recovered']} record(s) recovered"
                )
        lines.append(
            "  output vs fault-free serial reference: "
            + ("IDENTICAL" if self.identical else "DIFFERS")
        )
        return "\n".join(lines)


def run_chaos(
    experiment: str,
    plan: FaultPlan,
    scale: str = "smoke",
    seed: int = 0,
    workers: int = 2,
    out: str | None = None,
    lease_timeout: float = 15.0,
    reconnect_timeout: float = 30.0,
    max_attempts: int = 3,
    log: Callable[[str], None] | None = None,
    **experiment_kwargs,
) -> ChaosReport:
    """Run ``experiment`` distributed under ``plan``; assert the output
    survives (see module docstring).  ``out`` attaches a run ledger,
    which additionally exercises detect-salvage-resume when the plan
    injects ledger damage.  Returns a :class:`ChaosReport`; raises
    :class:`~repro.errors.ReproError` only on harness misuse (unknown
    experiment, non-distributable experiment), never on injected
    faults — a divergent output is reported, not raised, so callers
    and CI can print the diff.
    """
    from ..dist import DistributedSubmit
    from ..reporting.experiments import DISTRIBUTABLE, run_experiment
    from ..store.ledger import salvage_ledger, verify_ledger

    log = log or (lambda message: None)
    if experiment not in DISTRIBUTABLE:
        raise ReproError(
            f"experiment {experiment!r} cannot run under chaos (not "
            f"distributable); choose from {', '.join(sorted(DISTRIBUTABLE))}"
        )

    log(f"chaos: rendering fault-free serial reference for {experiment}")
    uninstall()
    serial_text = run_experiment(
        experiment, scale=scale, seed=seed, **experiment_kwargs
    )

    # The plan travels to workers as a file; materialise it next to the
    # ledger (or a scratch dir the caller owns via ``out``).
    if out is not None:
        plan_dir = Path(out)
        plan_dir.mkdir(parents=True, exist_ok=True)
    else:
        import tempfile

        plan_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    plan_path = plan_dir / f"fault-plan-{plan.name}.json"
    plan.dump(plan_path)

    injector = install(plan, role="coordinator", log=log)
    chaos = ChaosSubmit(
        inner=DistributedSubmit(
            workers=workers,
            lease_timeout=lease_timeout,
            max_attempts=max_attempts,
            fault_plan=str(plan_path),
            reconnect_timeout=reconnect_timeout,
            log=log,
        ),
        log=log,
    )
    log(
        f"chaos: running {experiment} with {workers} worker(s) under "
        f"plan {plan.name!r} (seed {plan.seed})"
    )
    try:
        chaos_text = run_experiment(
            experiment, scale=scale, seed=seed, out=out, submit=chaos,
            **experiment_kwargs,
        )
        trace = list(injector.trace)
    finally:
        uninstall()

    # Detect-salvage-resume over the ledger, with injection off: the
    # damage was done during the run; recovery is production code.
    ledger_problems: list = []
    salvage: dict | None = None
    final_text = chaos_text
    if out is not None:
        ledger_problems = verify_ledger(out)
        if ledger_problems:
            log(
                f"chaos: ledger verify found {len(ledger_problems)} "
                "problem(s); salvaging"
            )
            salvage = salvage_ledger(out, log=log)
            log("chaos: re-rendering from the salvaged ledger")
        final_text = run_experiment(
            experiment, scale=scale, seed=seed, resume=out,
            **experiment_kwargs,
        )

    identical = chaos_text == serial_text and final_text == serial_text
    return ChaosReport(
        experiment=experiment,
        plan=plan,
        serial_text=serial_text,
        chaos_text=chaos_text,
        final_text=final_text,
        identical=identical,
        quarantined=dict(chaos.quarantined),
        trace=trace,
        ledger_problems=ledger_problems,
        salvage=salvage,
    )
