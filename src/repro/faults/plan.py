"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a declared failure model: a seed plus a list of
:class:`FaultSpec` entries, each naming an injection *site* threaded
through the library's hot paths (socket send/recv, work-unit execution,
ledger appends, heartbeats, the coordinator merge loop) and a fault
*kind* to fire there.  Whether a given evaluation fires is a pure
function of ``(plan seed, site, spec kind, draw token)`` through
:func:`repro.rng.derive_seed` — the same discipline every simulator
stream uses — so a chaos run is bit-reproducible: the same plan and
seed produce the identical injection trace, machine to machine.

Draw tokens come in two flavours, chosen by the call site:

* **stable tokens** (e.g. a work unit's content key) make the decision
  placement-independent — a poison unit fails on *every* worker that
  tries it, which is exactly what quarantine logic needs to see;
* **per-site counters** (the default) make stream faults like frame
  drops fire at deterministic positions in each process's own call
  sequence.

Plans are plain JSON (see :meth:`FaultPlan.load`)::

    {
      "name": "poison-and-restart",
      "seed": 7,
      "faults": [
        {"site": "unit.execute", "kind": "raise", "rate": 1.0,
         "match": "cbe-dot", "role": "worker"},
        {"site": "coordinator.merge", "kind": "restart", "rate": 1.0,
         "skip": 2, "max_fires": 1, "role": "coordinator"},
        {"site": "ledger.checkpoint", "kind": "corrupt", "rate": 1.0,
         "skip": 1, "max_fires": 1, "role": "coordinator"}
      ]
    }

This module is pure bookkeeping — nothing here touches sockets, files
or processes.  The site owners (``repro.dist``, ``repro.store``,
``repro.parallel.plan``) query :func:`repro.faults.runtime.fault_at`
and apply whatever event comes back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import ReproError
from ..rng import derive_seed

#: Every site the library threads injection through, with the fault
#: kinds each site understands.  Declared here so plans validate at
#: load time instead of silently never firing on a typo.
SITES: dict[str, tuple[str, ...]] = {
    # repro.dist.protocol.send_message (both peers)
    "socket.send": ("drop", "partial", "delay", "garbage"),
    # repro.dist.protocol.recv_message (worker side)
    "socket.recv": ("drop", "delay", "garbage"),
    # repro.dist.protocol.send_message, compressed frames only: flip a
    # byte in the deflated body so the peer's inflate path must reject
    # it with a typed ProtocolError (v3 compression path)
    "socket.compress": ("corrupt",),
    # repro.dist.worker pipelined lease prefetch: skip falls back to
    # the blocking request path, delay stalls the prefetch send
    "worker.prefetch": ("skip", "delay"),
    # repro.parallel.plan.execute_unit (any backend, any process)
    "unit.execute": ("raise", "hang", "exit"),
    # repro.dist.worker per-unit heartbeat
    "worker.heartbeat": ("drop",),
    # repro.dist.coordinator result merge (simulated crash+restart)
    "coordinator.merge": ("restart",),
    # repro.store.ledger incremental checkpoint stream
    "ledger.checkpoint": ("truncate", "corrupt", "fsync-error"),
    # repro.store.ledger atomic batch append
    "ledger.append": ("truncate", "corrupt", "fsync-error"),
}

#: Where a spec applies: the coordinator process, worker processes (and
#: their pool children), or anywhere the plan is installed.
ROLES = ("any", "coordinator", "worker")

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """Full-avalanche 64-bit finalizer (splitmix64's).  ``derive_seed``
    alone is not enough here: its final step adds the last label's
    CRC32 into the low 32 bits only, so two draws differing solely in
    the token share their high bits — and a rate gate comparing
    ``value / 2**64`` against a threshold would fire identically for
    every token."""
    value &= _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _u01(parent: int, *labels: object) -> float:
    """One deterministic draw in ``[0, 1)`` from the seed-derivation
    chain (no RNG object, no stream state to desynchronise)."""
    return _mix64(derive_seed(parent, *labels)) / float(_MASK64 + 1)


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: fire ``kind`` at ``site`` with probability
    ``rate`` per draw.

    * ``match`` — only fire when the draw token contains this substring
      (how a plan poisons one specific work unit by content key);
    * ``skip`` — ignore the first N draws at this site (lets a plan say
      "restart the coordinator after the third merged result");
    * ``max_fires`` — stop firing after N hits (None = unlimited);
    * ``role`` — restrict to the coordinator or worker side;
    * ``params`` — kind-specific knobs (``delay_s`` for delays/hangs,
      ``exit_code`` for exits).
    """

    site: str
    kind: str
    rate: float = 1.0
    match: str | None = None
    skip: int = 0
    max_fires: int | None = None
    role: str = "any"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        if self.kind not in SITES[self.site]:
            raise ReproError(
                f"site {self.site!r} has no fault kind {self.kind!r}; "
                f"kinds: {', '.join(SITES[self.site])}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ReproError(
                f"fault rate must be within [0, 1], got {self.rate}"
            )
        if self.role not in ROLES:
            raise ReproError(
                f"unknown fault role {self.role!r}; roles: "
                f"{', '.join(ROLES)}"
            )
        if self.skip < 0:
            raise ReproError(f"fault skip must be >= 0, got {self.skip}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ReproError(
                f"max_fires must be >= 1 (or omitted), got {self.max_fires}"
            )

    def to_json(self) -> dict:
        out: dict = {"site": self.site, "kind": self.kind, "rate": self.rate}
        if self.match is not None:
            out["match"] = self.match
        if self.skip:
            out["skip"] = self.skip
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.role != "any":
            out["role"] = self.role
        if self.params:
            out["params"] = self.params
        return out

    @classmethod
    def from_json(cls, obj: object) -> "FaultSpec":
        if not isinstance(obj, dict) or "site" not in obj or "kind" not in obj:
            raise ReproError(f"malformed fault spec: {obj!r}")
        known = {"site", "kind", "rate", "match", "skip", "max_fires",
                 "role", "params"}
        unknown = set(obj) - known
        if unknown:
            raise ReproError(
                f"fault spec has unknown fields {sorted(unknown)}: {obj!r}"
            )
        return cls(
            site=obj["site"],
            kind=obj["kind"],
            rate=float(obj.get("rate", 1.0)),
            match=obj.get("match"),
            skip=int(obj.get("skip", 0)),
            max_fires=obj.get("max_fires"),
            role=obj.get("role", "any"),
            params=dict(obj.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs (see module docstring)."""

    name: str
    seed: int
    specs: tuple[FaultSpec, ...]

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_json() for spec in self.specs],
        }

    @classmethod
    def from_json(cls, obj: object) -> "FaultPlan":
        if not isinstance(obj, dict) or not isinstance(
            obj.get("faults"), list
        ):
            raise ReproError(
                f"malformed fault plan (need name/seed/faults): {obj!r}"
            )
        return cls(
            name=str(obj.get("name", "chaos")),
            seed=int(obj.get("seed", 0)),
            specs=tuple(
                FaultSpec.from_json(spec) for spec in obj["faults"]
            ),
        )

    @classmethod
    def load(cls, path: Path | str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--plan`` / ``--faults``
        CLI currency)."""
        try:
            text = Path(path).read_text(encoding="utf-8")
            obj = json.loads(text)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"unreadable fault plan at {path}: {exc}"
            ) from exc
        return cls.from_json(obj)

    def dump(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One firing: what to do, where, and which draw triggered it."""

    site: str
    kind: str
    token: object
    draw: int
    params: dict

    def param(self, name: str, default):
        return self.params.get(name, default)


class FaultInjector:
    """Evaluates a plan's specs at each site query, deterministically.

    One injector lives per process (installed via
    :mod:`repro.faults.runtime`).  ``trace`` accumulates every firing
    as ``{"site", "kind", "token", "draw"}`` dicts — the determinism
    contract is that the same plan, seed and call sequence produce the
    identical trace.
    """

    def __init__(
        self,
        plan: FaultPlan,
        role: str = "any",
        log: Callable[[str], None] | None = None,
    ):
        if role not in ROLES:
            raise ReproError(
                f"unknown injector role {role!r}; roles: {', '.join(ROLES)}"
            )
        self.plan = plan
        self.role = role
        self.log = log
        self._by_site: dict[str, list[tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(plan.specs):
            self._by_site.setdefault(spec.site, []).append((index, spec))
        self._draws: dict[str, int] = {}
        self._fires: dict[int, int] = {}
        self.trace: list[dict] = []

    def fault_at(self, site: str, token: object = None) -> FaultEvent | None:
        """One evaluation of ``site``; the first matching spec that
        fires wins.  Every call consumes one draw index at the site
        whether or not anything fires (so traces stay aligned)."""
        specs = self._by_site.get(site)
        if not specs:
            return None
        draw = self._draws.get(site, 0)
        self._draws[site] = draw + 1
        for index, spec in specs:
            if spec.role != "any" and spec.role != self.role:
                continue
            if draw < spec.skip:
                continue
            fired = self._fires.get(index, 0)
            if spec.max_fires is not None and fired >= spec.max_fires:
                continue
            key = token if token is not None else draw
            if spec.match is not None and spec.match not in str(key):
                continue
            if spec.rate < 1.0 and not (
                _u01(self.plan.seed, site, spec.kind, key) < spec.rate
            ):
                continue
            self._fires[index] = fired + 1
            event = FaultEvent(
                site=site, kind=spec.kind, token=key, draw=draw,
                params=spec.params,
            )
            self.trace.append(
                {
                    "site": site,
                    "kind": spec.kind,
                    "token": str(key),
                    "draw": draw,
                }
            )
            if self.log is not None:
                self.log(
                    f"fault fired: site={site} kind={spec.kind} "
                    f"token={key} draw={draw}"
                )
            return event
        return None
