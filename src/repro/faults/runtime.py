"""Process-global fault-injection runtime.

The hot paths (socket frames, unit execution, ledger appends) query
:func:`fault_at` on every operation.  With no plan installed that is a
single ``None`` check — production runs pay nothing.  A plan reaches a
process one of two ways:

* :func:`install` — explicit, in-process (the chaos runner, tests);
* the ``REPRO_FAULT_PLAN`` environment variable — a path to a plan
  JSON, picked up lazily on the first :func:`fault_at` call.  This is
  how spawned worker subprocesses *and their pool children* inherit
  the plan without any plumbing: the worker CLI exports the variable
  and every descendant loads it on first use.  ``REPRO_FAULT_ROLE``
  selects the role (default ``worker`` for env-installed plans, since
  only worker-side processes are ever started with the variable set).

:func:`suppress_faults` temporarily disables injection in the current
process — the chaos runner uses it to re-execute quarantined units
cleanly, proving the unit itself was healthy and only the injected
fault poisoned it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

from .plan import FaultEvent, FaultInjector, FaultPlan

#: Environment variable naming a fault-plan JSON file to auto-install.
PLAN_ENV = "REPRO_FAULT_PLAN"
#: Environment variable naming the role for env-installed plans.
ROLE_ENV = "REPRO_FAULT_ROLE"

_ACTIVE: FaultInjector | None = None
_ENV_CHECKED = False
_SUPPRESS_DEPTH = 0


def install(
    plan: FaultPlan,
    role: str = "any",
    log: Callable[[str], None] | None = None,
) -> FaultInjector:
    """Install ``plan`` as this process's active injector (replacing
    any previous one) and return the injector for trace inspection."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = FaultInjector(plan, role=role, log=log)
    _ENV_CHECKED = True
    return _ACTIVE


def uninstall() -> None:
    """Remove the active injector (and forget the env check, so a test
    that sets ``REPRO_FAULT_PLAN`` afterwards is honoured)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def active_injector() -> FaultInjector | None:
    """The installed injector, auto-installing from the environment on
    first call (see module docstring).  None when faults are off."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(PLAN_ENV)
        if path:
            _ACTIVE = FaultInjector(
                FaultPlan.load(path),
                role=os.environ.get(ROLE_ENV, "worker"),
            )
    return _ACTIVE


def fault_at(site: str, token: object = None) -> FaultEvent | None:
    """Evaluate ``site`` against the active plan (None = no fault).

    This is the one call threaded through the hot paths; it returns
    immediately when no plan is installed or injection is suppressed.
    """
    if _SUPPRESS_DEPTH:
        return None
    injector = _ACTIVE if _ENV_CHECKED else active_injector()
    if injector is None:
        return None
    return injector.fault_at(site, token)


@contextmanager
def suppress_faults():
    """Disable injection within the block (re-entrant)."""
    global _SUPPRESS_DEPTH
    _SUPPRESS_DEPTH += 1
    try:
        yield
    finally:
        _SUPPRESS_DEPTH -= 1
