"""Deterministic fault injection for chaos-testing the pipeline.

``repro.faults`` turns failure handling from an incidental property
into a declared, tested contract: a :class:`FaultPlan` (JSON, seeded)
names injection sites threaded through the distributed layer, the run
ledger and work-unit execution; every firing is a deterministic
function of the plan seed and a site-keyed draw, so a chaos run — and
its injection trace — is bit-reproducible.  The chaos harness
(:func:`repro.faults.chaos.run_chaos`, CLI ``gpu-wmm chaos``) runs any
distributable experiment under a plan and proves the hardened pipeline
still renders output byte-identical to a fault-free serial run.

See ``docs/ARCHITECTURE.md`` ("Failure model") for the fault taxonomy
and the invariants each site's hardening maintains.
"""

from .chaos import ChaosReport, ChaosSubmit, run_chaos
from .plan import (
    ROLES,
    SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from .runtime import (
    PLAN_ENV,
    ROLE_ENV,
    active_injector,
    fault_at,
    install,
    suppress_faults,
    uninstall,
)

__all__ = [
    "ChaosReport",
    "ChaosSubmit",
    "run_chaos",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "PLAN_ENV",
    "ROLE_ENV",
    "ROLES",
    "SITES",
    "active_injector",
    "fault_at",
    "install",
    "suppress_faults",
    "uninstall",
]
