"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UnknownChipError(ReproError):
    """Requested a chip that is not in the registry."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown chip {name!r}; known chips: {', '.join(known)}"
        )


class UnknownApplicationError(ReproError):
    """Requested an application case study that is not in the registry."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown application {name!r}; known: {', '.join(known)}"
        )


class KernelTimeoutError(ReproError):
    """A kernel exceeded the engine's tick budget (paper: 30s timeout)."""

    def __init__(self, ticks: int):
        self.ticks = ticks
        super().__init__(f"kernel did not terminate within {ticks} ticks")


class BarrierDivergenceError(ReproError):
    """Not all threads of a block reached a barrier (undefined behaviour
    in CUDA; a hard error in our simulator)."""


class InvalidAccessError(ReproError):
    """A kernel accessed memory outside any allocated buffer."""


class PowerQueryUnsupportedError(ReproError):
    """NVML-style power query on a chip without power sensors.

    The paper could only measure power on K5200, Titan, K20 and C2075.
    """

    def __init__(self, chip: str):
        self.chip = chip
        super().__init__(f"chip {chip!r} does not support power queries")


class InvalidSequenceError(ReproError):
    """An access sequence string was not of the form (ld|st)+."""


class InvalidStressConfigError(ReproError):
    """A stress configuration was internally inconsistent."""


class FenceInsertionError(ReproError):
    """Empirical fence insertion could not converge (paper: 24h timeout)."""


class CostMeasurementError(ReproError):
    """Cost measurement could not gather enough passing native runs.

    Raised when the Sec. 6 retry loop exhausts its attempt budget before
    accumulating the requested number of post-condition-passing
    executions — the simulated analogue of a native binary that fails
    too often to be timed.
    """

    def __init__(self, app: str, chip: str, attempts: int, passing: int):
        self.app = app
        self.chip = chip
        self.attempts = attempts
        self.passing = passing
        super().__init__(
            f"too many erroneous native runs for {app} on {chip}: only "
            f"{passing} passing runs in {attempts} attempts; cannot "
            "measure cost"
        )


class ResultHookError(ReproError):
    """An ``on_result`` hook raised while a parallel map streamed back.

    The hook is how completed shards checkpoint into the run ledger, so
    a failure here means durability is compromised mid-campaign; the map
    aborts loudly with the shard index (and, when the caller knows it,
    the content key of the record being written) instead of surfacing a
    bare traceback from deep inside the pool drain loop.
    """

    def __init__(self, index: int, key: str | None = None,
                 detail: str | None = None):
        self.index = index
        self.key = key
        message = f"on_result hook failed for work item {index}"
        if key is not None:
            message += f" (content key {key})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class LedgerError(ReproError):
    """A run-ledger operation failed (missing directory, bad manifest)."""


class LedgerCorruptError(LedgerError):
    """A ledger segment contains corruption beyond a truncated tail.

    A killed writer may leave a partial final line in its segment —
    readers tolerate that.  Anything else (garbage mid-file, a record
    without its required fields) indicates real damage and is refused
    rather than silently dropped.
    """


class LedgerConflictError(LedgerCorruptError):
    """Two records share one content key but carry different payloads.

    Content keys are pure functions of everything that determines a
    result, so two honest runs can never disagree under one key —
    identical duplicates are merged idempotently, but a conflicting
    payload means one side is wrong (a corrupted segment, a patched
    binary, a worker with a different library version) and must never
    silently overwrite the other.
    """

    def __init__(self, key: str, detail: str = ""):
        self.key = key
        message = (
            f"conflicting payloads under content key {key!r}; refusing "
            "to overwrite (identical duplicates merge idempotently, "
            "disagreement means corruption)"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)


class DistError(ReproError):
    """A distributed-execution operation failed (see :mod:`repro.dist`)."""


class ProtocolError(DistError):
    """A malformed or unexpected frame on the coordinator/worker wire."""


class WorkerExitError(DistError):
    """A worker lost its coordinator or was told to abort mid-session."""


class QuarantineError(DistError):
    """A campaign finished with units parked in quarantine.

    A unit whose execution fails ``LeaseTable.max_attempts`` times —
    explicit worker-reported failures, connection losses and lease
    expiries all count — is *quarantined* instead of re-pended forever,
    so one poison unit can never crash-loop a worker fleet.  The
    coordinator finishes every healthy unit, then raises this error
    instead of returning a silently incomplete merge: ``quarantined``
    maps each parked unit's content key to the reason it was parked,
    and ``records`` carries every record that *did* merge (unit order)
    so callers can salvage the healthy part of the campaign.
    """

    def __init__(self, quarantined: dict, records: list | None = None):
        self.quarantined = dict(quarantined)
        self.records = list(records or [])
        first = next(iter(self.quarantined), "?")
        super().__init__(
            f"{len(self.quarantined)} work unit(s) quarantined after "
            f"exhausting their attempt budgets (first: {first!r}); "
            f"{len(self.records)} healthy records merged"
        )


class FaultInjected(ReproError):
    """An error deliberately raised by the fault-injection plane.

    Only ever raised while a :class:`~repro.faults.FaultPlan` is
    installed (chaos runs and tests); production code paths never see
    it.  Carrying the site and draw token makes chaos traces
    self-describing.
    """

    def __init__(self, site: str, token: object, kind: str = "raise"):
        self.site = site
        self.token = token
        self.kind = kind
        super().__init__(
            f"injected fault at site {site!r} (token {token!r}, "
            f"kind {kind!r})"
        )
