"""Program hardening by empirical fence insertion (paper Sec. 5)."""

from .fence_sets import all_fences, split_fences, sorted_sites
from .insertion import (
    EmpiricalFenceInserter,
    InsertionResult,
    empirical_fence_insertion,
)

__all__ = [
    "all_fences",
    "split_fences",
    "sorted_sites",
    "EmpiricalFenceInserter",
    "InsertionResult",
    "empirical_fence_insertion",
]
