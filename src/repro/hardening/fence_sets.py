"""Fence-set utilities for empirical fence insertion.

A fence set is a set of *site* labels; the application instrumentation
executes a device fence after every access whose site is in the set.
The paper's reduction procedures operate on fences sorted by their
location in the code, which here is the application's declared site
order.
"""

from __future__ import annotations

from ..apps.base import Application


def all_fences(app: Application) -> frozenset[str]:
    """The initial fence set: a fence after every memory access."""
    return frozenset(app.sites())


def sorted_sites(app: Application, fences: frozenset[str]) -> list[str]:
    """``fences`` in the application's program order (code location)."""
    order = {site: i for i, site in enumerate(app.sites())}
    unknown = [f for f in fences if f not in order]
    if unknown:
        raise ValueError(
            f"fences {unknown} are not sites of application {app.name!r}"
        )
    return sorted(fences, key=order.__getitem__)


def split_fences(
    app: Application, fences: frozenset[str]
) -> tuple[frozenset[str], frozenset[str]]:
    """The paper's ``SplitFences``: first half / second half by code
    location."""
    ordered = sorted_sites(app, fences)
    mid = len(ordered) // 2
    return frozenset(ordered[:mid]), frozenset(ordered[mid:])
