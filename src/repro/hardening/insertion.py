"""Empirical fence insertion — the paper's Algorithm 1.

Starting from a fence after every memory access, binary reduction
repeatedly tries to discard half of the remaining fences, then linear
reduction tries to discard fences one at a time; each removal is
accepted when the application shows no errors over ``I`` test-campaign
iterations under the aggressive ``sys-str+`` environment.  The final
candidate must pass a full empirical-stability check (the paper's
one-hour run; here ``Scale.stability_runs`` executions); on failure the
whole reduction restarts with a doubled iteration count.

The result is a *minimal empirically stable* fence set: removing any
single fence re-exposes erroneous behaviour under the testing
environment.  As the paper stresses, this hardens the application but
proves nothing — CheckApplication is testing, not verification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..apps.base import Application, ApplicationBatch
from ..chips.profile import HardwareProfile
from ..errors import FenceInsertionError
from ..parallel import (
    CheckShard,
    ParallelConfig,
    merge_check_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..stress.environment import TestingEnvironment
from ..stress.strategies import TunedStress
from ..tuning.pipeline import shipped_params
from .fence_sets import all_fences, split_fences, sorted_sites


@dataclass(frozen=True)
class InsertionResult:
    """Outcome of empirical fence insertion for one chip/application.

    ``iterations_used`` is the per-candidate iteration count ``I`` of
    the *last reduction pass actually run* — the budget that produced
    ``reduced`` — whether or not that pass converged.
    """

    chip: str
    app: str
    initial_fences: int
    reduced: frozenset[str]
    iterations_used: int
    check_runs: int
    wall_seconds: float
    converged: bool

    def table6_row(self) -> dict[str, object]:
        return {
            "app": self.app,
            "init.": self.initial_fences,
            "red.": len(self.reduced),
            "time (mins)": round(self.wall_seconds / 60.0, 3),
        }


def _check_shard(args: tuple) -> CheckShard:
    """Process-pool worker: fence-check runs ``[start, stop)``.

    Run ``i`` uses the seed a serial check would use at counter value
    ``base + i + 1``.  The worker stops at its first error — later runs
    of the shard cannot change the merged verdict (the first erroneous
    index over all shards), so the speculation past a failure in an
    earlier shard is the only wasted work.  The shard's runs share one
    :class:`ApplicationBatch` (setup once; per-seed results identical
    to standalone runs).
    """
    app, chip, env, fences, seed, base, start, stop = args
    batch = ApplicationBatch(
        app, chip, stress_spec=env.strategy, randomise=env.randomise
    )
    for i in range(start, stop):
        result = batch.run(
            derive_seed(
                seed, "check", app.name, chip.short_name, base + i + 1
            ),
            fence_sites=fences,
        )
        if result.erroneous:
            return CheckShard(start=start, stop=stop, first_error=i)
    return CheckShard(start=start, stop=stop, first_error=None)


class EmpiricalFenceInserter:
    """Algorithm 1, bound to one application and one chip."""

    def __init__(
        self,
        app: Application,
        chip: HardwareProfile,
        scale: Scale = DEFAULT,
        seed: int = 0,
        max_restarts: int = 4,
        parallel: ParallelConfig | None = None,
    ):
        self.app = app
        self.chip = chip
        self.scale = scale
        self.seed = seed
        self.max_restarts = max_restarts
        self.parallel = resolve_config(parallel, scale)
        self.environment = TestingEnvironment(
            strategy=TunedStress(shipped_params(chip.short_name)),
            randomise=True,
        )
        self.check_runs = 0
        self._check_counter = 0
        self._batch: ApplicationBatch | None = None

    @property
    def batch(self) -> ApplicationBatch:
        """One batch serves the whole serial reduction: the fence set is
        a per-run parameter of :meth:`ApplicationBatch.run`, so every
        candidate evaluation reuses the same setup/memory-system/engine.
        Built lazily — the parallel path never touches it (each
        ``_check_shard`` worker builds its own)."""
        if self._batch is None:
            self._batch = ApplicationBatch(
                self.app,
                self.chip,
                stress_spec=self.environment.strategy,
                randomise=self.environment.randomise,
            )
        return self._batch

    # -- the paper's CheckApplication / EmpiricallyStable ---------------
    def check_application(
        self, fences: frozenset[str], iterations: int
    ) -> bool:
        """True when A+F shows no errors over ``iterations`` runs.

        Candidate evaluation is the hot loop of Algorithm 1, so the run
        budget is sharded across worker processes.  Each run's seed
        depends only on the check counter at call entry plus the run's
        index, and the counter advances by the number of runs a *serial*
        early-exiting loop would have performed (the first erroneous
        index plus one) — so serial and parallel reductions traverse
        identical seed streams and converge to identical fence sets.
        """
        base = self._check_counter
        if self.parallel.serial:
            first: int | None = None
            batch = self.batch
            for i in range(iterations):
                result = batch.run(
                    derive_seed(
                        self.seed, "check", self.app.name,
                        self.chip.short_name, base + i + 1,
                    ),
                    fence_sites=fences,
                )
                if result.erroneous:
                    first = i
                    break
        else:
            shards = parallel_map(
                _check_shard,
                [
                    (
                        self.app, self.chip, self.environment, fences,
                        self.seed, base, start, stop,
                    )
                    for start, stop in shard_ranges(
                        iterations, self.parallel
                    )
                ],
                self.parallel,
            )
            first = merge_check_shards(shards, iterations)
        performed = iterations if first is None else first + 1
        self._check_counter = base + performed
        self.check_runs += performed
        return first is None

    def empirically_stable(self, fences: frozenset[str]) -> bool:
        """The paper's one-hour stability check, at campaign scale."""
        return self.check_application(fences, self.scale.stability_runs)

    # -- reductions ------------------------------------------------------
    def binary_reduction(
        self, fences: frozenset[str], iterations: int
    ) -> frozenset[str]:
        while len(fences) > 1:
            first, second = split_fences(self.app, fences)
            if first and self.check_application(fences - first, iterations):
                fences = fences - first
            elif second and self.check_application(
                fences - second, iterations
            ):
                fences = fences - second
            else:
                return fences
        return fences

    def linear_reduction(
        self, fences: frozenset[str], iterations: int
    ) -> frozenset[str]:
        for fence in sorted_sites(self.app, fences):
            candidate = fences - {fence}
            if self.check_application(candidate, iterations):
                fences = candidate
        return fences

    # -- Algorithm 1 -------------------------------------------------------
    def run(self, initial_iterations: int = 32) -> InsertionResult:
        """Binary + linear reduction with the stability restart loop.

        Exhausting every restart is a legitimate outcome (the paper's
        24-hour timeout): the best candidate is returned with
        ``converged=False`` so callers — and the run ledger — can
        record the partial result.  Only the degenerate configuration
        ``max_restarts <= 0``, where the reduction loop would never
        run at all, raises.
        """
        if self.max_restarts <= 0:
            raise FenceInsertionError(
                f"fence insertion for {self.app.name} on "
                f"{self.chip.short_name} needs max_restarts >= 1 "
                f"(got {self.max_restarts}); the reduction loop would "
                "never run"
            )
        started = time.perf_counter()
        initial = all_fences(self.app)
        iterations = initial_iterations
        converged = False
        reduced = initial
        iterations_used = initial_iterations
        for _ in range(self.max_restarts):
            iterations_used = iterations
            after_binary = self.binary_reduction(initial, iterations)
            reduced = self.linear_reduction(after_binary, iterations)
            if self.empirically_stable(reduced):
                converged = True
                break
            iterations *= 2
        return InsertionResult(
            chip=self.chip.short_name,
            app=self.app.name,
            initial_fences=len(initial),
            reduced=reduced,
            iterations_used=iterations_used,
            check_runs=self.check_runs,
            wall_seconds=time.perf_counter() - started,
            converged=converged,
        )


def empirical_fence_insertion(
    app: Application,
    chip: HardwareProfile,
    scale: Scale = DEFAULT,
    seed: int = 0,
    initial_iterations: int = 32,
    max_restarts: int = 4,
    parallel: ParallelConfig | None = None,
    ledger=None,
) -> InsertionResult:
    """Run Algorithm 1 for one application on one chip.

    ``parallel`` shards every candidate fence-set evaluation across
    worker processes; the reduction path and final fence set are
    identical to a serial run (see ``check_application``).

    ``ledger`` (a :class:`~repro.store.RunLedger`) caches the whole
    insertion result: a recorded (chip, app, scale, seed) key is
    decoded instead of re-run, and a fresh run is appended atomically —
    unconverged outcomes included, so long campaigns never repeat a
    finished reduction.
    """
    from ..store import cached_or_run, insertion_key, records as store_records

    key = insertion_key(
        chip.short_name, app.name, scale.stability_runs,
        initial_iterations, max_restarts, seed,
    )

    def run() -> InsertionResult:
        inserter = EmpiricalFenceInserter(
            app, chip, scale=scale, seed=seed,
            max_restarts=max_restarts, parallel=parallel,
        )
        return inserter.run(initial_iterations=initial_iterations)

    return cached_or_run(
        ledger, key, run,
        store_records.encode_insertion, store_records.decode_insertion,
    )
