"""repro — reproduction of "Exposing Errors Related to Weak Memory in
GPU Applications" (Tyler Sorensen and Alastair F. Donaldson, PLDI 2016).

The library rebuilds the paper's entire system on a simulated GPU with a
parameterised weak memory model:

* :mod:`repro.chips` — the seven studied GPUs as hidden-silicon profiles;
* :mod:`repro.gpu` — the SIMT execution engine and weak memory subsystem;
* :mod:`repro.litmus` — the litmus IR, the MP/LB/SB-rooted test family
  and its two execution backends (direct fast path, compiled SIMT);
* :mod:`repro.stress` — stressing strategies and testing environments;
* :mod:`repro.tuning` — the per-chip tuning pipeline (Sec. 3);
* :mod:`repro.apps` — the ten application case studies (Sec. 4, Tab. 4);
* :mod:`repro.testing` — the campaign runner and Table 5 summary;
* :mod:`repro.hardening` — empirical fence insertion (Sec. 5, Alg. 1);
* :mod:`repro.costs` — the fence runtime/energy cost study (Sec. 6);
* :mod:`repro.reporting` — regeneration of every paper table and figure.

Quickstart (the paper's cbe-dot story):

>>> from repro import get_chip, get_application, run_application
>>> from repro import TunedStress, shipped_params
>>> chip = get_chip("K20")
>>> app = get_application("cbe-dot")
>>> run_application(app, chip, seed=1).ok           # native: no errors
True
>>> stress = TunedStress(shipped_params("K20"))
>>> runs = [run_application(app, chip, stress_spec=stress,
...                         randomise=True, seed=i) for i in range(30)]
>>> sum(not r.ok for r in runs) > 0                 # stressed: errors
True
"""

from .apps.base import (
    ApplicationBatch,
    AppRun,
    Application,
    run_application,
    run_application_batch,
)
from .apps.registry import all_applications, get_application
from .chips.registry import SC_REFERENCE, all_chips, get_chip
from .errors import ReproError
from .gpu.engine import Engine, ExecutionResult, Outcome
from .gpu.memory import MemorySystem
from .gpu.pressure import StressField
from .hardening.insertion import empirical_fence_insertion
from .litmus.compile import backend_parity, run_litmus_compiled
from .litmus.runner import run_litmus
from .litmus.tests import (
    ALL_TESTS,
    LB,
    MP,
    SB,
    TUNING_TESTS,
    LitmusTest,
    get_test,
)
from .scale import DEFAULT, PAPER, SMOKE, Scale, get_scale
from .store import RunLedger
from .stress.config import StressConfig
from .stress.environment import TestingEnvironment, standard_environments
from .stress.strategies import (
    CacheStress,
    FixedLocationStress,
    NoStress,
    RandomStress,
    TunedStress,
)
from .testing.campaign import run_campaign
from .testing.summary import table5_summary
from .tuning.pipeline import shipped_params, tune_chip

__version__ = "1.0.0"

__all__ = [
    "AppRun",
    "Application",
    "ApplicationBatch",
    "run_application",
    "run_application_batch",
    "all_applications",
    "get_application",
    "SC_REFERENCE",
    "all_chips",
    "get_chip",
    "ReproError",
    "Engine",
    "ExecutionResult",
    "Outcome",
    "MemorySystem",
    "StressField",
    "empirical_fence_insertion",
    "run_litmus",
    "run_litmus_compiled",
    "backend_parity",
    "MP",
    "LB",
    "SB",
    "ALL_TESTS",
    "TUNING_TESTS",
    "LitmusTest",
    "get_test",
    "Scale",
    "SMOKE",
    "DEFAULT",
    "PAPER",
    "get_scale",
    "RunLedger",
    "StressConfig",
    "TestingEnvironment",
    "standard_environments",
    "NoStress",
    "TunedStress",
    "RandomStress",
    "CacheStress",
    "FixedLocationStress",
    "run_campaign",
    "table5_summary",
    "shipped_params",
    "tune_chip",
    "__version__",
]
