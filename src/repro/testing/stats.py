"""Statistical primitives for backend-parity validation.

The vector backend (:mod:`repro.litmus.vector`) cannot be draw-identical
to the scalar core — its correctness oracle is *statistical*: at fixed
seeds, the weak-outcome rates of the two backends must be samples from
the same underlying Bernoulli rate.  This module supplies the small
toolbox that test harnesses and reports use to decide that question —

* :func:`two_proportion_test` — the classic pooled two-sided z-test for
  ``H0: p1 == p2`` over two binomial samples;
* :func:`wilson_interval` — a Wilson score confidence interval for one
  binomial proportion (well-behaved at 0 and 1, unlike the Wald
  interval);
* :func:`bonferroni_alpha` — the per-comparison level for a family of
  ``m`` tests at family-wise level ``alpha``;
* :func:`parity_family` — run the whole family of pairwise comparisons
  with Bonferroni correction and report every rejection.

Only the standard library is used; the normal tail is computed from
``math.erfc`` and its inverse by bisection, so the module works in any
environment the repo supports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "ProportionTest",
    "ParityVerdict",
    "bonferroni_alpha",
    "normal_sf",
    "normal_isf",
    "parity_family",
    "two_proportion_test",
    "wilson_interval",
]


def normal_sf(z: float) -> float:
    """P(Z > z) for a standard normal — the one-sided tail."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def normal_isf(p: float) -> float:
    """Inverse of :func:`normal_sf`: the z with upper-tail mass ``p``.

    Solved by bisection on the monotone survivor function; 200
    iterations pin the answer far past double precision for any
    ``p`` in (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"tail probability must be in (0, 1), got {p}")
    lo, hi = -40.0, 40.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if normal_sf(mid) > p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def bonferroni_alpha(alpha: float, comparisons: int) -> float:
    """Per-comparison significance level for ``comparisons`` tests."""
    if comparisons < 1:
        raise ValueError("comparisons must be >= 1")
    return alpha / comparisons


@dataclass(frozen=True)
class ProportionTest:
    """The outcome of one two-sided two-proportion z-test."""

    z: float
    p_value: float
    rate1: float
    rate2: float

    def rejects(self, alpha: float) -> bool:
        return self.p_value < alpha


def two_proportion_test(
    successes1: int, trials1: int, successes2: int, trials2: int
) -> ProportionTest:
    """Two-sided pooled z-test of ``H0: p1 == p2``.

    Degenerate pools (both samples all-success or all-failure) have
    zero pooled variance and identical rates; they report ``z == 0``.
    """
    if trials1 <= 0 or trials2 <= 0:
        raise ValueError("both samples need at least one trial")
    if not 0 <= successes1 <= trials1 or not 0 <= successes2 <= trials2:
        raise ValueError("successes must lie within [0, trials]")
    r1 = successes1 / trials1
    r2 = successes2 / trials2
    pooled = (successes1 + successes2) / (trials1 + trials2)
    var = pooled * (1.0 - pooled) * (1.0 / trials1 + 1.0 / trials2)
    if var <= 0.0:
        return ProportionTest(z=0.0, p_value=1.0, rate1=r1, rate2=r2)
    z = (r1 - r2) / math.sqrt(var)
    return ProportionTest(
        z=z, p_value=2.0 * normal_sf(abs(z)), rate1=r1, rate2=r2
    )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be >= 1")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie within [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = normal_isf((1.0 - confidence) / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = phat + z * z / (2.0 * trials)
    spread = z * math.sqrt(
        phat * (1.0 - phat) / trials + z * z / (4.0 * trials * trials)
    )
    return ((centre - spread) / denom, (centre + spread) / denom)


@dataclass(frozen=True)
class ParityVerdict:
    """A family of pairwise comparisons, Bonferroni-corrected."""

    comparisons: tuple[tuple[str, ProportionTest], ...]
    alpha: float
    per_comparison_alpha: float

    @property
    def rejections(self) -> tuple[str, ...]:
        return tuple(
            name
            for name, test in self.comparisons
            if test.rejects(self.per_comparison_alpha)
        )

    @property
    def passed(self) -> bool:
        return not self.rejections

    @property
    def worst(self) -> tuple[str, ProportionTest] | None:
        if not self.comparisons:
            return None
        return max(self.comparisons, key=lambda item: abs(item[1].z))


def parity_family(
    samples: Iterable[tuple[str, Sequence[int]]],
    alpha: float = 0.001,
) -> ParityVerdict:
    """Test a family of ``(name, (k1, n1, k2, n2))`` comparisons.

    Returns a verdict whose :attr:`~ParityVerdict.passed` is True when
    no comparison rejects at the Bonferroni-corrected level.
    """
    items = [
        (name, two_proportion_test(*counts)) for name, counts in samples
    ]
    per = bonferroni_alpha(alpha, max(1, len(items)))
    return ParityVerdict(
        comparisons=tuple(items), alpha=alpha, per_comparison_alpha=per
    )
