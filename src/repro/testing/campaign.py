"""Campaign runner: chips × applications × testing environments.

The paper executes each (chip, application, environment) combination
repeatedly for one hour and records erroneous runs.  Here the wall-clock
budget is replaced by a run count (``Scale.campaign_runs``); the derived
statistics — error rate and the >5% *effectiveness* threshold — are the
same.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import Application, ApplicationBatch
from ..apps.registry import all_applications
from ..chips.profile import HardwareProfile
from ..parallel import (
    CellShard,
    ParallelConfig,
    merge_cell_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..stress.environment import TestingEnvironment, standard_environments
from ..tuning.pipeline import shipped_params


@dataclass(frozen=True)
class CampaignCell:
    """Error statistics for one (chip, application, environment)."""

    chip: str
    app: str
    environment: str
    errors: int
    timeouts: int
    runs: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.runs if self.runs else 0.0


def _cell_shard(args: tuple) -> CellShard:
    """Process-pool worker: campaign runs ``[start, stop)`` of one cell.

    Run ``i`` of a cell always draws from the seed stream derived from
    its global index, so any sharding of the run range reproduces the
    serial statistics exactly.  The shard's runs share one
    :class:`ApplicationBatch` (setup once, per-seed results identical
    to standalone runs).
    """
    cell, app, chip, env, seed, start, stop = args
    errors = 0
    timeouts = 0
    batch = ApplicationBatch(
        app, chip, stress_spec=env.strategy, randomise=env.randomise
    )
    for i in range(start, stop):
        result = batch.run(derive_seed(seed, "campaign", env.name, i))
        if result.erroneous:
            errors += 1
        if result.timed_out:
            timeouts += 1
    return CellShard(
        cell=cell, start=start, stop=stop, errors=errors, timeouts=timeouts
    )


def run_cell(
    app: Application,
    chip: HardwareProfile,
    env: TestingEnvironment,
    runs: int,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
) -> CampaignCell:
    """Run one campaign cell (one table entry of the raw data)."""
    config = resolve_config(parallel)
    shards = parallel_map(
        _cell_shard,
        [
            (0, app, chip, env, seed, start, stop)
            for start, stop in shard_ranges(runs, config)
        ],
        config,
    )
    errors, timeouts = merge_cell_shards(shards, runs).get(0, (0, 0))
    return CampaignCell(
        chip=chip.short_name,
        app=app.name,
        environment=env.name,
        errors=errors,
        timeouts=timeouts,
        runs=runs,
    )


def run_campaign(
    chips: list[HardwareProfile],
    apps: list[Application] | None = None,
    environments: list[str] | None = None,
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
) -> list[CampaignCell]:
    """Run the full Sec. 4 campaign grid.

    ``environments`` filters by name (e.g. ``["sys-str+", "no-str-"]``);
    None runs all eight.

    Under ``parallel`` the whole grid is flattened into (cell × run
    chunk) shards and dispatched to one worker pool, so small grids with
    slow cells still keep every worker busy; shard outputs are reduced
    back into per-cell :class:`CampaignCell` statistics that match a
    serial run bit for bit.
    """
    config = resolve_config(parallel, scale)
    if apps is None:
        apps = all_applications()
    grid: list[tuple[HardwareProfile, Application, TestingEnvironment]] = []
    for chip in chips:
        envs = standard_environments(shipped_params(chip.short_name))
        if environments is not None:
            envs = [e for e in envs if e.name in environments]
        for app in apps:
            for env in envs:
                grid.append((chip, app, env))
    runs = scale.campaign_runs
    work = [
        (index, app, chip, env, seed, start, stop)
        for index, (chip, app, env) in enumerate(grid)
        for start, stop in shard_ranges(runs, config)
    ]
    shards = parallel_map(_cell_shard, work, config)
    merged = merge_cell_shards(shards, runs)
    cells = []
    for index, (chip, app, env) in enumerate(grid):
        errors, timeouts = merged.get(index, (0, 0))
        cells.append(
            CampaignCell(
                chip=chip.short_name,
                app=app.name,
                environment=env.name,
                errors=errors,
                timeouts=timeouts,
                runs=runs,
            )
        )
    return cells
