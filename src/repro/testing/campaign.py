"""Campaign runner: chips × applications × testing environments.

The paper executes each (chip, application, environment) combination
repeatedly for one hour and records erroneous runs.  Here the wall-clock
budget is replaced by a run count (``Scale.campaign_runs``); the derived
statistics — error rate and the >5% *effectiveness* threshold — are the
same.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import Application, run_application
from ..apps.registry import all_applications
from ..chips.profile import HardwareProfile
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..stress.environment import TestingEnvironment, standard_environments
from ..tuning.pipeline import shipped_params


@dataclass(frozen=True)
class CampaignCell:
    """Error statistics for one (chip, application, environment)."""

    chip: str
    app: str
    environment: str
    errors: int
    timeouts: int
    runs: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.runs if self.runs else 0.0


def run_cell(
    app: Application,
    chip: HardwareProfile,
    env: TestingEnvironment,
    runs: int,
    seed: int = 0,
) -> CampaignCell:
    """Run one campaign cell (one table entry of the raw data)."""
    errors = 0
    timeouts = 0
    for i in range(runs):
        result = run_application(
            app,
            chip,
            stress_spec=env.strategy,
            randomise=env.randomise,
            seed=derive_seed(seed, "campaign", env.name, i),
        )
        if result.erroneous:
            errors += 1
        if result.timed_out:
            timeouts += 1
    return CampaignCell(
        chip=chip.short_name,
        app=app.name,
        environment=env.name,
        errors=errors,
        timeouts=timeouts,
        runs=runs,
    )


def run_campaign(
    chips: list[HardwareProfile],
    apps: list[Application] | None = None,
    environments: list[str] | None = None,
    scale: Scale = DEFAULT,
    seed: int = 0,
) -> list[CampaignCell]:
    """Run the full Sec. 4 campaign grid.

    ``environments`` filters by name (e.g. ``["sys-str+", "no-str-"]``);
    None runs all eight.
    """
    if apps is None:
        apps = all_applications()
    cells = []
    for chip in chips:
        envs = standard_environments(shipped_params(chip.short_name))
        if environments is not None:
            envs = [e for e in envs if e.name in environments]
        for app in apps:
            for env in envs:
                cells.append(
                    run_cell(app, chip, env, scale.campaign_runs, seed)
                )
    return cells
