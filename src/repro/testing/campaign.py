"""Campaign runner: chips × applications × testing environments.

The paper executes each (chip, application, environment) combination
repeatedly for one hour and records erroneous runs.  Here the wall-clock
budget is replaced by a run count (``Scale.campaign_runs``); the derived
statistics — error rate and the >5% *effectiveness* threshold — are the
same.

With a :class:`~repro.store.RunLedger` the campaign becomes durable and
resumable: every completed shard checkpoints into the ledger the moment
it streams back, finished cells are recorded whole, and a re-run over
the same ledger replays only the missing run ranges.  Because run ``i``
of a cell always draws from the seed stream derived from its *global*
index, the resumed statistics are bit-identical to a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..apps.base import Application, ApplicationBatch
from ..apps.registry import all_applications, get_application
from ..chips.profile import HardwareProfile
from ..chips.registry import get_chip
from ..parallel import (
    CellShard,
    ParallelConfig,
    WorkUnit,
    merge_cell_shards,
    register_executor,
    resolve_config,
    shard_ranges,
)
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..store import missing_ranges, submit_units
from ..store import records as store_records
from ..store.ledger import RunLedger
from ..stress.environment import TestingEnvironment, standard_environments
from ..stress.strategies import spec_from_json, spec_to_json
from ..tuning.pipeline import shipped_params


@dataclass(frozen=True)
class CampaignCell:
    """Error statistics for one (chip, application, environment)."""

    chip: str
    app: str
    environment: str
    errors: int
    timeouts: int
    runs: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.runs if self.runs else 0.0


def campaign_unit(
    chip: HardwareProfile,
    app: Application,
    env: TestingEnvironment,
    runs: int,
    seed: int,
    start: int,
    stop: int,
) -> WorkUnit:
    """One campaign shard — runs ``[start, stop)`` of one cell — as a
    location-independent work unit (names and serialised specs only)."""
    return WorkUnit(
        kind="campaign-shard",
        key=store_records.campaign_shard_key(
            chip.short_name, app.name, env.name, runs, seed, start, stop
        ),
        spec={
            "chip": chip.short_name,
            "app": app.name,
            "environment": env.name,
            "stress": spec_to_json(env.strategy),
            "randomise": env.randomise,
            "runs": runs,
            "seed": seed,
            "start": start,
            "stop": stop,
        },
    )


def execute_campaign_unit(unit: WorkUnit) -> store_records.RunRecord:
    """Execute one campaign shard anywhere (pool child, remote worker).

    Run ``i`` of a cell always draws from the seed stream derived from
    its *global* index, so any sharding of the run range — and any
    placement of this unit — reproduces the serial statistics exactly.
    The shard's runs share one :class:`ApplicationBatch` (setup once,
    per-seed results identical to standalone runs).
    """
    s = unit.spec
    batch = ApplicationBatch(
        get_application(s["app"]),
        get_chip(s["chip"]),
        stress_spec=spec_from_json(s["stress"]),
        randomise=s["randomise"],
    )
    errors = 0
    timeouts = 0
    for i in range(s["start"], s["stop"]):
        result = batch.run(
            derive_seed(s["seed"], "campaign", s["environment"], i)
        )
        if result.erroneous:
            errors += 1
        if result.timed_out:
            timeouts += 1
    shard = CellShard(
        cell=0, start=s["start"], stop=s["stop"],
        errors=errors, timeouts=timeouts,
    )
    return store_records.encode_campaign_shard(
        unit.key, s["chip"], s["app"], s["environment"], s["runs"],
        s["seed"], shard,
    )


register_executor("campaign-shard", execute_campaign_unit)


def _ledgered_shards(
    ledger: RunLedger,
    chip: HardwareProfile,
    app: Application,
    env: TestingEnvironment,
    runs: int,
    seed: int,
    cell: int,
) -> list[CellShard]:
    """Checkpointed shards of one cell, re-homed onto grid index
    ``cell`` and reduced to a sorted non-overlapping set.

    Shards written at a different worker count can overlap; overlapping
    records are discarded (their ranges simply re-run) because partial
    counts cannot be split exactly.
    """
    decoded = [
        store_records.decode_campaign_shard(record, cell=cell)
        for record in ledger.records(
            "campaign-shard",
            chip=chip.short_name,
            app=app.name,
            environment=env.name,
            runs=runs,
            seed=seed,
        )
    ]
    kept: list[CellShard] = []
    end = 0
    for shard in sorted(decoded, key=lambda s: s.start):
        if shard.start >= end and shard.stop <= runs:
            kept.append(shard)
            end = shard.stop
    return kept


def _run_grid(
    grid: list[tuple[HardwareProfile, Application, TestingEnvironment]],
    runs: int,
    seed: int,
    config: ParallelConfig,
    ledger: RunLedger | None,
    submit: Callable | None = None,
) -> list[CampaignCell]:
    """Run (or resume) every cell of ``grid`` for ``runs`` executions.

    The whole grid is flattened into (cell × run chunk) work units and
    dispatched through one submit backend — the shared local pool by
    default, the distributed coordinator when ``submit`` is a
    :class:`~repro.dist.DistributedSubmit` — so small grids with slow
    cells still keep every worker busy; shard records are reduced back
    into per-cell :class:`CampaignCell` statistics that match a serial
    run bit for bit regardless of backend.  With a ledger, fully
    recorded cells are decoded outright, checkpointed shards shrink the
    remaining work to the missing run ranges, and fresh shards
    checkpoint as they complete.
    """
    cells: list[CampaignCell | None] = [None] * len(grid)
    cached_shards: list[CellShard] = []
    units: list[WorkUnit] = []
    unit_cell: dict[str, int] = {}
    for index, (chip, app, env) in enumerate(grid):
        covered: list[tuple[int, int]] = []
        if ledger is not None:
            record = ledger.get(
                store_records.campaign_cell_key(
                    chip.short_name, app.name, env.name, runs, seed
                )
            )
            if record is not None:
                cells[index] = store_records.decode_campaign_cell(record)
                continue
            done = _ledgered_shards(
                ledger, chip, app, env, runs, seed, index
            )
            cached_shards.extend(done)
            covered = [(s.start, s.stop) for s in done]
        for lo, hi in missing_ranges(covered, runs):
            for start, stop in shard_ranges(hi - lo, config):
                unit = campaign_unit(
                    chip, app, env, runs, seed, lo + start, lo + stop
                )
                unit_cell[unit.key] = index
                units.append(unit)
    fresh = [
        store_records.decode_campaign_shard(
            record, cell=unit_cell[record.key]
        )
        for record in submit_units(units, config, ledger, submit)
    ]
    merged = merge_cell_shards(cached_shards + fresh, runs)
    new_records = []
    for index, (chip, app, env) in enumerate(grid):
        if cells[index] is not None:
            continue
        errors, timeouts = merged.get(index, (0, 0))
        cell = CampaignCell(
            chip=chip.short_name,
            app=app.name,
            environment=env.name,
            errors=errors,
            timeouts=timeouts,
            runs=runs,
        )
        cells[index] = cell
        if ledger is not None:
            new_records.append(
                store_records.encode_campaign_cell(
                    store_records.campaign_cell_key(
                        chip.short_name, app.name, env.name, runs, seed
                    ),
                    cell,
                )
            )
    if ledger is not None and new_records:
        ledger.append(*new_records)
    return cells


def run_cell(
    app: Application,
    chip: HardwareProfile,
    env: TestingEnvironment,
    runs: int,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit: Callable | None = None,
) -> CampaignCell:
    """Run one campaign cell (one table entry of the raw data)."""
    config = resolve_config(parallel)
    return _run_grid(
        [(chip, app, env)], runs, seed, config, ledger, submit
    )[0]


def run_campaign(
    chips: list[HardwareProfile],
    apps: list[Application] | None = None,
    environments: list[str] | None = None,
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
    submit: Callable | None = None,
) -> list[CampaignCell]:
    """Run the full Sec. 4 campaign grid.

    ``environments`` filters by name (e.g. ``["sys-str+", "no-str-"]``);
    None runs all eight.

    Under ``parallel`` the whole grid is flattened into (cell × run
    chunk) shards and dispatched to one worker pool, so small grids with
    slow cells still keep every worker busy; shard outputs are reduced
    back into per-cell :class:`CampaignCell` statistics that match a
    serial run bit for bit.

    ``ledger`` makes the campaign durable and resumable: completed
    shards and cells persist as they finish, and a repeat invocation
    over the same ledger replays only what is missing (see
    :mod:`repro.store`).

    ``submit`` swaps the execution backend — pass a
    :class:`~repro.dist.DistributedSubmit` to serve the grid to socket
    workers instead of the local pool; results are identical by the
    seeding contract.
    """
    config = resolve_config(parallel, scale)
    if apps is None:
        apps = all_applications()
    grid: list[tuple[HardwareProfile, Application, TestingEnvironment]] = []
    for chip in chips:
        envs = standard_environments(shipped_params(chip.short_name))
        if environments is not None:
            envs = [e for e in envs if e.name in environments]
        for app in apps:
            for env in envs:
                grid.append((chip, app, env))
    return _run_grid(
        grid, scale.campaign_runs, seed, config, ledger, submit
    )
