"""Campaign runner: chips × applications × testing environments.

The paper executes each (chip, application, environment) combination
repeatedly for one hour and records erroneous runs.  Here the wall-clock
budget is replaced by a run count (``Scale.campaign_runs``); the derived
statistics — error rate and the >5% *effectiveness* threshold — are the
same.

With a :class:`~repro.store.RunLedger` the campaign becomes durable and
resumable: every completed shard checkpoints into the ledger the moment
it streams back, finished cells are recorded whole, and a re-run over
the same ledger replays only the missing run ranges.  Because run ``i``
of a cell always draws from the seed stream derived from its *global*
index, the resumed statistics are bit-identical to a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import Application, ApplicationBatch
from ..apps.registry import all_applications
from ..chips.profile import HardwareProfile
from ..parallel import (
    CellShard,
    ParallelConfig,
    merge_cell_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..store import records as store_records
from ..store.ledger import RunLedger
from ..stress.environment import TestingEnvironment, standard_environments
from ..tuning.pipeline import shipped_params


@dataclass(frozen=True)
class CampaignCell:
    """Error statistics for one (chip, application, environment)."""

    chip: str
    app: str
    environment: str
    errors: int
    timeouts: int
    runs: int

    @property
    def error_rate(self) -> float:
        return self.errors / self.runs if self.runs else 0.0


def _cell_shard(args: tuple) -> CellShard:
    """Process-pool worker: campaign runs ``[start, stop)`` of one cell.

    Run ``i`` of a cell always draws from the seed stream derived from
    its global index, so any sharding of the run range reproduces the
    serial statistics exactly.  The shard's runs share one
    :class:`ApplicationBatch` (setup once, per-seed results identical
    to standalone runs).
    """
    cell, app, chip, env, seed, start, stop = args
    errors = 0
    timeouts = 0
    batch = ApplicationBatch(
        app, chip, stress_spec=env.strategy, randomise=env.randomise
    )
    for i in range(start, stop):
        result = batch.run(derive_seed(seed, "campaign", env.name, i))
        if result.erroneous:
            errors += 1
        if result.timed_out:
            timeouts += 1
    return CellShard(
        cell=cell, start=start, stop=stop, errors=errors, timeouts=timeouts
    )


def _missing_ranges(
    covered: list[tuple[int, int]], runs: int
) -> list[tuple[int, int]]:
    """Complement of sorted disjoint ``covered`` ranges within
    ``[0, runs)`` — the run indices a resumed cell still owes."""
    out = []
    position = 0
    for start, stop in covered:
        if start > position:
            out.append((position, start))
        position = max(position, stop)
    if position < runs:
        out.append((position, runs))
    return out


def _ledgered_shards(
    ledger: RunLedger,
    chip: HardwareProfile,
    app: Application,
    env: TestingEnvironment,
    runs: int,
    seed: int,
    cell: int,
) -> list[CellShard]:
    """Checkpointed shards of one cell, re-homed onto grid index
    ``cell`` and reduced to a sorted non-overlapping set.

    Shards written at a different worker count can overlap; overlapping
    records are discarded (their ranges simply re-run) because partial
    counts cannot be split exactly.
    """
    decoded = [
        store_records.decode_campaign_shard(record, cell=cell)
        for record in ledger.records(
            "campaign-shard",
            chip=chip.short_name,
            app=app.name,
            environment=env.name,
            runs=runs,
            seed=seed,
        )
    ]
    kept: list[CellShard] = []
    end = 0
    for shard in sorted(decoded, key=lambda s: s.start):
        if shard.start >= end and shard.stop <= runs:
            kept.append(shard)
            end = shard.stop
    return kept


def _run_grid(
    grid: list[tuple[HardwareProfile, Application, TestingEnvironment]],
    runs: int,
    seed: int,
    config: ParallelConfig,
    ledger: RunLedger | None,
) -> list[CampaignCell]:
    """Run (or resume) every cell of ``grid`` for ``runs`` executions.

    The whole grid is flattened into (cell × run chunk) shards and
    dispatched to one worker pool, so small grids with slow cells still
    keep every worker busy; shard outputs are reduced back into
    per-cell :class:`CampaignCell` statistics that match a serial run
    bit for bit.  With a ledger, fully recorded cells are decoded
    outright, checkpointed shards shrink the remaining work to the
    missing run ranges, and fresh shards checkpoint as they complete.
    """
    cells: list[CampaignCell | None] = [None] * len(grid)
    cached_shards: list[CellShard] = []
    work: list[tuple] = []
    for index, (chip, app, env) in enumerate(grid):
        covered: list[tuple[int, int]] = []
        if ledger is not None:
            record = ledger.get(
                store_records.campaign_cell_key(
                    chip.short_name, app.name, env.name, runs, seed
                )
            )
            if record is not None:
                cells[index] = store_records.decode_campaign_cell(record)
                continue
            done = _ledgered_shards(
                ledger, chip, app, env, runs, seed, index
            )
            cached_shards.extend(done)
            covered = [(s.start, s.stop) for s in done]
        for lo, hi in _missing_ranges(covered, runs):
            for start, stop in shard_ranges(hi - lo, config):
                work.append(
                    (index, app, chip, env, seed, lo + start, lo + stop)
                )
    if work and ledger is not None:
        with ledger.writer() as checkpoint:

            def on_result(j: int, shard: CellShard) -> None:
                index, app, chip, env = (
                    work[j][0], work[j][1], work[j][2], work[j][3]
                )
                checkpoint.write(
                    store_records.encode_campaign_shard(
                        store_records.campaign_shard_key(
                            chip.short_name, app.name, env.name, runs,
                            seed, shard.start, shard.stop,
                        ),
                        chip.short_name, app.name, env.name, runs, seed,
                        shard,
                    )
                )

            fresh = parallel_map(_cell_shard, work, config, on_result)
    else:
        fresh = parallel_map(_cell_shard, work, config)
    merged = merge_cell_shards(cached_shards + fresh, runs)
    new_records = []
    for index, (chip, app, env) in enumerate(grid):
        if cells[index] is not None:
            continue
        errors, timeouts = merged.get(index, (0, 0))
        cell = CampaignCell(
            chip=chip.short_name,
            app=app.name,
            environment=env.name,
            errors=errors,
            timeouts=timeouts,
            runs=runs,
        )
        cells[index] = cell
        if ledger is not None:
            new_records.append(
                store_records.encode_campaign_cell(
                    store_records.campaign_cell_key(
                        chip.short_name, app.name, env.name, runs, seed
                    ),
                    cell,
                )
            )
    if ledger is not None and new_records:
        ledger.append(*new_records)
    return cells


def run_cell(
    app: Application,
    chip: HardwareProfile,
    env: TestingEnvironment,
    runs: int,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> CampaignCell:
    """Run one campaign cell (one table entry of the raw data)."""
    config = resolve_config(parallel)
    return _run_grid([(chip, app, env)], runs, seed, config, ledger)[0]


def run_campaign(
    chips: list[HardwareProfile],
    apps: list[Application] | None = None,
    environments: list[str] | None = None,
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger: RunLedger | None = None,
) -> list[CampaignCell]:
    """Run the full Sec. 4 campaign grid.

    ``environments`` filters by name (e.g. ``["sys-str+", "no-str-"]``);
    None runs all eight.

    Under ``parallel`` the whole grid is flattened into (cell × run
    chunk) shards and dispatched to one worker pool, so small grids with
    slow cells still keep every worker busy; shard outputs are reduced
    back into per-cell :class:`CampaignCell` statistics that match a
    serial run bit for bit.

    ``ledger`` makes the campaign durable and resumable: completed
    shards and cells persist as they finish, and a repeat invocation
    over the same ledger replays only what is missing (see
    :mod:`repro.store`).
    """
    config = resolve_config(parallel, scale)
    if apps is None:
        apps = all_applications()
    grid: list[tuple[HardwareProfile, Application, TestingEnvironment]] = []
    for chip in chips:
        envs = standard_environments(shipped_params(chip.short_name))
        if environments is not None:
            envs = [e for e in envs if e.name in environments]
        for app in apps:
            for env in envs:
                grid.append((chip, app, env))
    return _run_grid(grid, scale.campaign_runs, seed, config, ledger)
