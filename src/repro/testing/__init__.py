"""Application test campaigns (paper Sec. 4)."""

from .campaign import CampaignCell, run_campaign, run_cell
from .stats import (
    ParityVerdict,
    ProportionTest,
    bonferroni_alpha,
    parity_family,
    two_proportion_test,
    wilson_interval,
)
from .summary import Table5Cell, table5_summary, EFFECTIVENESS_THRESHOLD

__all__ = [
    "CampaignCell",
    "run_campaign",
    "run_cell",
    "Table5Cell",
    "table5_summary",
    "EFFECTIVENESS_THRESHOLD",
    "ParityVerdict",
    "ProportionTest",
    "bonferroni_alpha",
    "parity_family",
    "two_proportion_test",
    "wilson_interval",
]
