"""Simulator-soundness gate: the backends against the axiomatic model.

The axiomatic oracle (:mod:`repro.axiom`) declares which final states a
litmus test *can* have; the three execution backends (direct, engine,
vector) sample final states from the simulated memory system.  The gate
connects the two: it runs every test on every backend at fixed seeds,
collects *every* observed final state (not just forbidden-condition
hits, via the backends' ``observed_outcomes*`` collectors), and checks
the invariants that make the empirical reproduction trustworthy:

* **soundness** — no backend ever produces an axiomatically forbidden
  state;
* **condition verdicts** — every registry test's forbidden predicate is
  either a genuine relaxed-memory observable (weak-allowed ∧
  SC-unreachable) or a deliberate negative check (forbidden outright:
  the fully-fenced and coherence tests, which the family tests assert
  stay silent on every backend);
* **SC cross-check** — the model's full-fence fragment equals the
  brute-force SC enumerator, and the SC reference chip only ever
  produces SC-allowed states;
* **non-vacuity** — rounds completed (the direct backend's tick budget
  never clipped an observation).

A violation of any invariant at the pinned seeds is a real bug in
either the simulator or the model — the gate fails CI rather than
explaining it away.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..axiom.model import VERDICT_FORBIDDEN, VERDICT_SC, classify
from ..chips import SC_REFERENCE, get_chip
from ..litmus.compile import observed_outcomes_engine
from ..litmus.runner import observed_outcomes
from ..litmus.tests import ALL_TESTS
from ..litmus.vector import observed_outcomes_vector
from ..stress.strategies import TunedStress
from ..tuning.pipeline import shipped_params

#: Registry tests whose forbidden predicate is a genuine weak-memory
#: observable (weak-allowed, SC-unreachable) …
WEAK_CONDITION_TESTS = (
    "MP", "LB", "SB", "MP-F0", "MP-F1", "R", "S", "2+2W",
    "WRC", "IRIW", "3.LB",
)
#: … and the negative checks whose predicate no allowed execution can
#: satisfy (the family tests assert these stay silent everywhere).
FORBIDDEN_CONDITION_TESTS = ("MP-FF", "LB-FF", "SB-FF", "CoRR", "CoWW")

_COLLECTORS = {
    "direct": observed_outcomes,
    "engine": observed_outcomes_engine,
    "vector": observed_outcomes_vector,
}

#: Fixed-seed gate defaults: enough executions for the weak tests to
#: actually fire on the vector backend, cheap enough for tier-1.
DEFAULT_EXECUTIONS = {"direct": 40, "engine": 8, "vector": 2048}


@dataclass(frozen=True)
class BackendCheck:
    """One (test, backend) cell of the gate."""

    test: str
    backend: str
    chip: str
    distinct: int          # distinct final states observed
    rounds: int            # rounds observed in total
    weak: int              # executions with a forbidden-condition round
    incomplete: int
    forbidden: tuple       # observed states the model forbids

    @property
    def ok(self) -> bool:
        return not self.forbidden and self.incomplete == 0


@dataclass(frozen=True)
class GateReport:
    """Everything the soundness gate checked, with verdicts."""

    chip: str
    seed: int
    checks: tuple
    condition_verdicts: tuple   # (test name, verdict, expected, sc_agrees)
    sc_reference: tuple         # (test name, non-SC states observed)

    @property
    def violations(self) -> tuple:
        out = []
        for check in self.checks:
            for state in check.forbidden:
                out.append(
                    f"{check.test}/{check.backend}: forbidden state "
                    f"{state}"
                )
            if check.incomplete:
                out.append(
                    f"{check.test}/{check.backend}: {check.incomplete} "
                    f"incomplete rounds dropped"
                )
        for name, verdict, expected, sc_agrees in self.condition_verdicts:
            if verdict != expected:
                out.append(
                    f"{name}: condition verdict {verdict!r}, "
                    f"expected {expected!r}"
                )
            if not sc_agrees:
                out.append(
                    f"{name}: full-fence model disagrees with the SC "
                    f"enumerator"
                )
        for name, bad in self.sc_reference:
            if bad:
                out.append(
                    f"{name}: SC reference chip produced non-SC states "
                    f"{bad}"
                )
        return tuple(out)

    @property
    def ok(self) -> bool:
        return not self.violations


def _expected_verdict(name: str) -> str:
    if name in FORBIDDEN_CONDITION_TESTS:
        return VERDICT_FORBIDDEN
    return "weak"


def soundness_gate(
    tests=ALL_TESTS,
    chip: str = "K20",
    backends=("direct", "engine", "vector"),
    seed: int = 7,
    executions: dict | None = None,
    check_sc_reference: bool = True,
) -> GateReport:
    """Run the full gate and return the report (see module docstring).

    ``executions`` overrides :data:`DEFAULT_EXECUTIONS` per backend.
    Distances follow the family tests' convention (two cache patches
    apart); stress is the chip's shipped tuned configuration.
    """
    profile = get_chip(chip)
    stress = TunedStress(shipped_params(profile.short_name))
    budget = dict(DEFAULT_EXECUTIONS)
    budget.update(executions or {})
    distance = 2 * profile.patch_size

    checks = []
    verdicts = []
    sc_ref = []
    for test in tests:
        report = classify(test)
        verdicts.append((
            test.name,
            report.condition,
            _expected_verdict(test.name),
            report.sc_agrees,
        ))
        for backend in backends:
            obs = _COLLECTORS[backend](
                profile, test, distance, stress, budget[backend], seed=seed
            )
            bad = tuple(sorted(
                state for state in obs.outcomes
                if report.verdict_of(dict(state[0]), dict(state[1]))
                == VERDICT_FORBIDDEN
            ))
            checks.append(BackendCheck(
                test=test.name,
                backend=backend,
                chip=profile.short_name,
                distinct=len(obs.outcomes),
                rounds=sum(obs.outcomes.values()) + obs.incomplete,
                weak=obs.weak,
                incomplete=obs.incomplete,
                forbidden=bad,
            ))
        if check_sc_reference:
            ref_stress = TunedStress(
                shipped_params(SC_REFERENCE.short_name)
            )
            obs = observed_outcomes(
                SC_REFERENCE, test, 2 * SC_REFERENCE.patch_size,
                ref_stress, budget["direct"], seed=seed,
            )
            non_sc = tuple(sorted(
                state for state in obs.outcomes
                if report.verdict_of(dict(state[0]), dict(state[1]))
                != VERDICT_SC
            ))
            sc_ref.append((test.name, non_sc))

    return GateReport(
        chip=profile.short_name,
        seed=seed,
        checks=tuple(checks),
        condition_verdicts=tuple(verdicts),
        sc_reference=tuple(sc_ref),
    )
