"""Table 5 summarisation.

The paper's Table 5 reports, per chip and environment, ``a / b``: the
number of applications for which errors were observed (``b``) and, of
those, how many crossed the 5% effectiveness threshold (``a``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..stress.environment import ENVIRONMENT_ORDER
from .campaign import CampaignCell

#: An environment is *effective* for a chip/application when more than
#: this fraction of executions err (paper Sec. 1 and Sec. 4.3).
EFFECTIVENESS_THRESHOLD = 0.05


@dataclass(frozen=True)
class Table5Cell:
    """One chip × environment cell: ``effective / observed`` apps."""

    chip: str
    environment: str
    effective: int
    observed: int
    observed_apps: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.effective} / {self.observed}"


def table5_summary(
    cells: list[CampaignCell],
) -> dict[tuple[str, str], Table5Cell]:
    """Aggregate raw campaign cells into the Table 5 grid."""
    grouped: dict[tuple[str, str], list[CampaignCell]] = defaultdict(list)
    for cell in cells:
        grouped[(cell.chip, cell.environment)].append(cell)
    table: dict[tuple[str, str], Table5Cell] = {}
    for (chip, env), group in grouped.items():
        observed = [c for c in group if c.errors > 0]
        effective = [
            c for c in observed if c.error_rate > EFFECTIVENESS_THRESHOLD
        ]
        table[(chip, env)] = Table5Cell(
            chip=chip,
            environment=env,
            effective=len(effective),
            observed=len(observed),
            observed_apps=tuple(sorted(c.app for c in observed)),
        )
    return table


def most_capable_environment(
    table: dict[tuple[str, str], Table5Cell], chip: str
) -> str:
    """The environment observing errors in the most applications for a
    chip (ties broken by effectiveness, then Table 5 column order)."""
    best = None
    for env in ENVIRONMENT_ORDER:
        cell = table.get((chip, env))
        if cell is None:
            continue
        key = (cell.observed, cell.effective)
        if best is None or key > best[0]:
            best = (key, env)
    if best is None:
        raise ValueError(f"no campaign data for chip {chip!r}")
    return best[1]
