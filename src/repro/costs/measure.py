"""Runtime and energy measurement of fencing strategies (Sec. 6).

Applications run *natively* (no testing environment) under three
fencing strategies:

* ``no`` — all fences removed (unsafe);
* ``emp`` — the fences found by empirical fence insertion (hardened);
* ``cons`` — a fence after every memory access (conservative).

Runtime is the modelled kernel time (engine ticks plus fence stall
cycles, converted through the chip clock — the analogue of CUDA-event
timing); energy multiplies the average modelled power by the runtime,
exactly the paper's NVML methodology, and is only available on the four
chips with power sensors.  Runs failing the post-condition are discarded
and repeated, as in the paper.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass

from ..apps.base import Application, ApplicationBatch
from ..chips.power import PowerModel
from ..chips.profile import HardwareProfile
from ..errors import CostMeasurementError
from ..hardening.fence_sets import all_fences
from ..rng import derive_seed


class FencingStrategy(enum.Enum):
    """The three fencing configurations compared in Sec. 6."""

    NONE = "no fences"
    EMPIRICAL = "emp fences"
    CONSERVATIVE = "cons fences"


@dataclass(frozen=True)
class CostMeasurement:
    """Averaged native runtime/energy for one configuration."""

    chip: str
    app: str
    strategy: FencingStrategy
    runtime_ms: float
    energy_j: float | None
    runs: int
    discarded: int

    def overhead_vs(self, baseline: "CostMeasurement") -> float:
        """Runtime overhead in percent relative to ``baseline``."""
        if baseline.runtime_ms <= 0:
            raise ValueError("baseline runtime must be positive")
        return 100.0 * (self.runtime_ms / baseline.runtime_ms - 1.0)

    def energy_overhead_vs(self, baseline: "CostMeasurement") -> float:
        """Energy overhead in percent relative to ``baseline``."""
        if self.energy_j is None or baseline.energy_j is None:
            raise ValueError("energy not measured (no power sensors)")
        if baseline.energy_j <= 0:
            raise ValueError("baseline energy must be positive")
        return 100.0 * (self.energy_j / baseline.energy_j - 1.0)


def fences_for(
    app: Application,
    strategy: FencingStrategy,
    empirical: frozenset[str] | None = None,
) -> frozenset[str]:
    """The fence set a strategy runs with.

    ``empirical`` supplies the per-chip insertion result; it defaults to
    the application's ground-truth required set (what insertion
    converges to).
    """
    if strategy is FencingStrategy.NONE:
        return frozenset()
    if strategy is FencingStrategy.CONSERVATIVE:
        return all_fences(app)
    if empirical is not None:
        return empirical
    return app.required_sites()


def measure_cost(
    app: Application,
    chip: HardwareProfile,
    strategy: FencingStrategy,
    runs: int = 30,
    seed: int = 0,
    empirical: frozenset[str] | None = None,
    ledger=None,
) -> CostMeasurement:
    """Average native runtime/energy over ``runs`` passing executions.

    The retry loop shares one :class:`ApplicationBatch` (native
    conditions: no stress, no randomisation), so repeated attempts cost
    only the execution itself.  Attempt seeds derive from the full
    (app, chip, strategy, attempt) identity, so no two cells of the
    cost grid ever replay the same execution stream.

    ``ledger`` caches the finished measurement under its content key;
    a recorded (chip, app, strategy, runs, seed) cell is decoded
    instead of re-measured.
    """
    from ..store import cached_or_run, cost_key, records as store_records

    key = cost_key(
        chip.short_name, app.name, strategy.name, runs, seed,
        fences=empirical,
    )
    return cached_or_run(
        ledger, key,
        lambda: _measure_cost(app, chip, strategy, runs, seed, empirical),
        store_records.encode_cost, store_records.decode_cost,
    )


def _measure_cost(
    app: Application,
    chip: HardwareProfile,
    strategy: FencingStrategy,
    runs: int,
    seed: int,
    empirical: frozenset[str] | None,
) -> CostMeasurement:
    power = PowerModel(chip)
    runtimes: list[float] = []
    energies: list[float] = []
    discarded = 0
    attempt = 0
    batch = ApplicationBatch(app, chip)
    fences = fences_for(app, strategy, empirical)
    while len(runtimes) < runs:
        attempt += 1
        if attempt > runs * 4:
            raise CostMeasurementError(
                app.name, chip.short_name, attempt - 1, len(runtimes)
            )
        result = batch.run(
            derive_seed(
                seed, "cost", app.name, chip.short_name, strategy.value,
                attempt,
            ),
            fence_sites=fences,
        )
        if result.erroneous:
            # The paper discards runs failing the post-condition.
            discarded += 1
            continue
        runtimes.append(chip.ticks_to_ms(result.result.runtime_ticks))
        if chip.supports_power:
            # Fence sleeps are part of the tick count; split the ticks
            # into busy and (capped) fence-stall portions for the power
            # model's activity estimate.
            stall = min(
                result.result.fence_stall_cycles,
                result.result.ticks * 9 // 10,
            )
            energies.append(
                power.energy_joules(result.result.ticks - stall, stall)
            )
    return CostMeasurement(
        chip=chip.short_name,
        app=app.name,
        strategy=strategy,
        runtime_ms=statistics.fmean(runtimes),
        energy_j=statistics.fmean(energies) if energies else None,
        runs=runs,
        discarded=discarded,
    )
