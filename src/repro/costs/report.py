"""Figure 5 data: fence cost scatter points and overhead summaries."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..apps.base import Application
from ..chips.profile import HardwareProfile
from .measure import FencingStrategy, measure_cost


@dataclass(frozen=True)
class CostPoint:
    """One scatter point of Fig. 5: baseline vs fenced cost."""

    chip: str
    app: str
    strategy: FencingStrategy
    baseline_runtime_ms: float
    fenced_runtime_ms: float
    baseline_energy_j: float | None
    fenced_energy_j: float | None

    @property
    def runtime_overhead_pct(self) -> float:
        return 100.0 * (
            self.fenced_runtime_ms / self.baseline_runtime_ms - 1.0
        )

    @property
    def energy_overhead_pct(self) -> float | None:
        if self.baseline_energy_j is None or self.fenced_energy_j is None:
            return None
        return 100.0 * (self.fenced_energy_j / self.baseline_energy_j - 1.0)


def figure5_points(
    apps: list[Application],
    chips: list[HardwareProfile],
    runs: int = 20,
    seed: int = 0,
    empirical: dict[tuple[str, str], frozenset[str]] | None = None,
    ledger=None,
) -> list[CostPoint]:
    """Measure every (chip, app) under all three strategies.

    ``empirical`` optionally maps (chip, app) to the fence set found by
    empirical insertion on that chip; ground-truth sets are used
    otherwise.  ``ledger`` caches each finished
    :class:`CostMeasurement`, so an interrupted cost study resumes at
    the first unmeasured (chip, app, strategy) cell.
    """
    points = []
    for chip in chips:
        for app in apps:
            base = measure_cost(
                app, chip, FencingStrategy.NONE, runs=runs, seed=seed,
                ledger=ledger,
            )
            for strategy in (
                FencingStrategy.EMPIRICAL,
                FencingStrategy.CONSERVATIVE,
            ):
                emp = None
                if empirical is not None:
                    emp = empirical.get((chip.short_name, app.name))
                fenced = measure_cost(
                    app, chip, strategy, runs=runs, seed=seed,
                    empirical=emp, ledger=ledger,
                )
                points.append(
                    CostPoint(
                        chip=chip.short_name,
                        app=app.name,
                        strategy=strategy,
                        baseline_runtime_ms=base.runtime_ms,
                        fenced_runtime_ms=fenced.runtime_ms,
                        baseline_energy_j=base.energy_j,
                        fenced_energy_j=fenced.energy_j,
                    )
                )
    return points


def overhead_summary(points: list[CostPoint]) -> dict[str, dict[str, float]]:
    """Median and maximum overheads per strategy (the Sec. 6 numbers)."""
    out: dict[str, dict[str, float]] = {}
    for strategy in (FencingStrategy.EMPIRICAL, FencingStrategy.CONSERVATIVE):
        mine = [p for p in points if p.strategy is strategy]
        if not mine:
            continue
        runtimes = [p.runtime_overhead_pct for p in mine]
        energies = [
            e
            for p in mine
            if (e := p.energy_overhead_pct) is not None
        ]
        summary = {
            "median runtime overhead %": statistics.median(runtimes),
            "max runtime overhead %": max(runtimes),
        }
        if energies:
            summary["median energy overhead %"] = statistics.median(energies)
            summary["max energy overhead %"] = max(energies)
        out[strategy.value] = summary
    return out
