"""The cost of fences (paper Sec. 6)."""

from .measure import CostMeasurement, FencingStrategy, measure_cost
from .report import CostPoint, figure5_points, overhead_summary

__all__ = [
    "CostMeasurement",
    "FencingStrategy",
    "measure_cost",
    "CostPoint",
    "figure5_points",
    "overhead_summary",
]
