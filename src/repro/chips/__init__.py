"""Chip models: the seven Nvidia GPUs of the paper's Table 1.

Each chip is described by a :class:`~repro.chips.profile.HardwareProfile`,
a *hidden silicon* model of its weak-memory personality (critical patch
size, channel sensitivities, access-sequence response, timing and power).

The rest of the library treats chips as black boxes: the tuning pipeline,
test campaigns and fence insertion only ever *run programs* on a simulated
chip and observe the outcomes, exactly as the paper's method does against
physical hardware.
"""

from .profile import HardwareProfile
from .registry import (
    CHIP_ORDER,
    SC_REFERENCE,
    all_chips,
    get_chip,
    table1_rows,
)
from .power import PowerModel, NvmlSession

__all__ = [
    "HardwareProfile",
    "CHIP_ORDER",
    "SC_REFERENCE",
    "all_chips",
    "get_chip",
    "table1_rows",
    "PowerModel",
    "NvmlSession",
]
