"""Hardware profiles: hidden weak-memory personality of each GPU.

A :class:`HardwareProfile` plays the role of the physical silicon in the
paper.  It encodes, per chip:

* memory geometry — the *critical patch size* (words per channel block,
  which the paper's Sec. 3.2 micro-benchmarks discover empirically; 128 or
  256 bytes, i.e. 32 or 64 words, on real Nvidia parts), the number of
  memory channels, SM count and occupancy limits;
* weak-memory behaviour — baseline reordering probabilities, per-channel
  stress sensitivity, the chip's response to stressing access sequences
  and to the number of simultaneously stressed regions;
* timing and power — clock rate, fence stall cost, idle/active power.

Nothing outside :mod:`repro.gpu` and :mod:`repro.chips` should reach into
these fields: the experiment layers interact with a chip only by running
simulated programs, preserving the paper's black-box methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..rng import make_rng

#: Kinds of memory access a stressing sequence may contain.
ACCESS_KINDS = ("ld", "st")


@dataclass(frozen=True)
class HardwareProfile:
    """Hidden silicon model for one GPU (see module docstring)."""

    # -- identity (paper Table 1) -------------------------------------
    name: str
    short_name: str
    architecture: str
    released: int

    # -- memory geometry ----------------------------------------------
    patch_size: int
    n_channels: int
    n_sms: int
    max_resident_threads: int
    l2_words: int
    store_buffer_capacity: int

    # -- weak-memory behaviour ----------------------------------------
    seed: int
    reorder_base: float
    store_swap_leak: float
    store_store_min_distance: int
    load_delay_base: float
    reorder_gain: float
    load_delay_gain: float
    latency_gain: float
    cross_channel_weight: float
    pressure_threshold: float
    turbulence_factors: tuple[float, ...]
    best_sequence: tuple[str, ...]
    sequence_affinity: float
    sensitivity_floor: float
    app_bias: dict[str, float] = field(default_factory=dict)

    # -- timing / power -------------------------------------------------
    clock_ghz: float = 0.8
    fence_stall_cycles: int = 12
    idle_watts: float = 30.0
    active_watts: float = 110.0
    supports_power: bool = False

    def __post_init__(self) -> None:
        # Precompute the address→channel arithmetic.  All shipped chips
        # have power-of-two patch sizes and channel counts, so the
        # hot-path mapping reduces to a shift and a mask; the division
        # form remains as the general fallback.  (``object.__setattr__``
        # because the dataclass is frozen.)
        if _is_pow2(self.patch_size) and _is_pow2(self.n_channels):
            shift = self.patch_size.bit_length() - 1
            mask = self.n_channels - 1
        else:  # pragma: no cover - no shipped chip takes this path
            shift = None
            mask = None
        object.__setattr__(self, "channel_shift", shift)
        object.__setattr__(self, "channel_mask", mask)
        # Hashable identity token for caches keyed by the chip's
        # weak-memory personality (see repro.gpu.memory's table cache).
        # The profile itself is unhashable (``app_bias`` is a dict).
        object.__setattr__(
            self,
            "cache_token",
            (
                self.name,
                self.short_name,
                self.seed,
                self.patch_size,
                self.n_channels,
                self.n_sms,
                self.sensitivity_floor,
                self.reorder_base,
                self.store_swap_leak,
                self.store_store_min_distance,
                self.load_delay_base,
                self.reorder_gain,
                self.load_delay_gain,
                self.latency_gain,
                self.cross_channel_weight,
                self.pressure_threshold,
                self.turbulence_factors,
            ),
        )

    # ------------------------------------------------------------------
    # memory geometry helpers
    # ------------------------------------------------------------------
    def channel(self, addr: int) -> int:
        """Map a word address to its memory channel.

        Addresses within one critical-patch-sized block share a channel,
        which is what makes the paper's "patches" emerge: stressing any
        location of a patch pressures the same channel.
        """
        if self.channel_shift is not None:
            return (addr >> self.channel_shift) & self.channel_mask
        return (addr // self.patch_size) % self.n_channels

    @property
    def sensitivity(self) -> np.ndarray:
        """Per-channel stress sensitivity in ``[0, 1]``.

        Some channels are nearly insensitive (the silent patches visible
        in the paper's Fig. 3); the pattern is a fixed function of the
        chip's personality seed.
        """
        return _sensitivity_array(
            self.seed, self.n_channels, self.sensitivity_floor
        )

    # ------------------------------------------------------------------
    # stress response
    # ------------------------------------------------------------------
    def sequence_strength(self, seq: tuple[str, ...]) -> float:
        """Stress intensity multiplier for an access sequence.

        Encodes the paper's Sec. 3.3 observations: store-only sequences
        are nearly useless, mixed load/store sequences are strong, each
        chip has a microarchitectural preference peaking at its Tab. 2
        sequence, and sequences equivalent under rotation may behave
        differently (position-dependent jitter).
        """
        return _sequence_strength(
            self.seed, self.best_sequence, self.sequence_affinity, seq
        )

    def turbulence(self, n_hot_channels: int) -> float:
        """Reordering multiplier given the number of congested channels.

        Encodes the spread response of Sec. 3.4: arbitration between
        exactly two hot channels maximises reordering; more hot channels
        spread traffic too thin, a single hot channel is less effective,
        and with none only the native leak remains.
        """
        idx = min(n_hot_channels, len(self.turbulence_factors) - 1)
        return self.turbulence_factors[idx]

    def app_sensitivity(self, app_name: str) -> float:
        """Per-application bias of this chip (silicon personality)."""
        return self.app_bias.get(app_name, 1.0)

    # ------------------------------------------------------------------
    # timing / power helpers
    # ------------------------------------------------------------------
    def ticks_to_ms(self, ticks: int) -> float:
        """Convert engine ticks to (modelled) kernel milliseconds."""
        return ticks / (self.clock_ghz * 1.0e4)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@lru_cache(maxsize=4096)
def _sequence_strength(
    seed: int,
    best: tuple[str, ...],
    affinity: float,
    seq: tuple[str, ...],
) -> float:
    """Memoized body of :meth:`HardwareProfile.sequence_strength`.

    A pure function of the chip personality and the sequence; the jitter
    draws from its own derived stream, so memoization cannot perturb any
    experiment stream.  Stressing strategies call this once per litmus
    execution, which made it a measurable hot-path constant.
    """
    if not seq or any(kind not in ACCESS_KINDS for kind in seq):
        raise ValueError(f"invalid access sequence {seq!r}")
    n_ld = sum(1 for kind in seq if kind == "ld")
    n_st = len(seq) - n_ld
    if n_ld == 0:
        base = 0.012 + 0.002 * n_st
    elif n_st == 0:
        base = 0.28 + 0.02 * n_ld
    else:
        base = 0.62 + 0.22 * min(n_ld, n_st) / len(seq)
    bonus = 0.0
    if seq == best:
        bonus = affinity
    elif _is_rotation(seq, best):
        bonus = 0.35 * affinity
    elif sorted(seq) == sorted(best):
        bonus = 0.22 * affinity
    prefix = _common_prefix(seq, best)
    bonus += 0.015 * prefix
    jitter = make_rng(seed, "seq", seq).uniform(-0.025, 0.025)
    return max(base + bonus + jitter, 0.001)


def _is_rotation(a: tuple[str, ...], b: tuple[str, ...]) -> bool:
    if len(a) != len(b):
        return False
    doubled = b + b
    return any(doubled[i : i + len(a)] == a for i in range(len(b)))


def _common_prefix(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


@lru_cache(maxsize=None)
def _sensitivity_array(
    seed: int, n_channels: int, floor: float
) -> np.ndarray:
    rng = make_rng(seed, "channel-sensitivity")
    raw = rng.uniform(0.0, 1.0, n_channels)
    # Channels below the floor are nearly (not exactly) insensitive:
    # the silent patches of Fig. 3 sit at the noise level, not at zero.
    sens = np.where(raw < floor, 0.05, np.maximum(raw, 0.45))
    if np.count_nonzero(sens > 0.1) < 2:
        # Guarantee at least two responsive channels so stressing is
        # always able to find an effective patch.
        sens[int(np.argmax(raw))] = max(raw.max(), 0.6)
        sens[(int(np.argmax(raw)) + 1) % n_channels] = 0.55
    sens.setflags(write=False)
    return sens
