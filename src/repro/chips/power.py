"""Power and energy model (stand-in for NVML, paper Sec. 6).

The paper estimates energy by sampling GPU power through NVML during
kernel execution and multiplying the average power by the kernel runtime.
Only four of the seven chips expose power sensors (K5200, Titan, K20 and
C2075); the same restriction is modelled here via
:class:`NvmlSession`, which raises
:class:`~repro.errors.PowerQueryUnsupportedError` on the other chips.

The model itself is simple and deliberately so — the paper emphasises its
own numbers are estimates: instantaneous power is an idle floor plus an
activity-proportional term, where fence-stall cycles count as low-activity
time (the memory pipeline is draining, the cores are waiting).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PowerQueryUnsupportedError
from .profile import HardwareProfile

#: Fraction of full activity attributed to a fence-stall cycle.
FENCE_STALL_ACTIVITY = 0.82


@dataclass(frozen=True)
class PowerSample:
    """One simulated NVML power reading, in watts."""

    watts: float


class PowerModel:
    """Analytic power/energy model for a chip."""

    def __init__(self, chip: HardwareProfile):
        self.chip = chip

    def average_power(self, busy_ticks: int, stall_ticks: int) -> float:
        """Average power in watts over a kernel execution.

        ``busy_ticks`` are cycles doing real work; ``stall_ticks`` are
        cycles spent waiting on fence drains.
        """
        total = busy_ticks + stall_ticks
        if total <= 0:
            return self.chip.idle_watts
        activity = (
            busy_ticks + FENCE_STALL_ACTIVITY * stall_ticks
        ) / total
        span = self.chip.active_watts - self.chip.idle_watts
        return self.chip.idle_watts + activity * span

    def energy_joules(self, busy_ticks: int, stall_ticks: int) -> float:
        """Estimated energy: average power times modelled runtime.

        Matches the paper's methodology (average NVML reading multiplied
        by the kernel runtime).
        """
        runtime_ms = self.chip.ticks_to_ms(busy_ticks + stall_ticks)
        return self.average_power(busy_ticks, stall_ticks) * runtime_ms / 1e3


class NvmlSession:
    """NVML-like power query session.

    Only chips with power sensors may be queried; this mirrors the
    paper's Sec. 6 restriction to K5200, Titan, K20 and C2075.
    """

    def __init__(self, chip: HardwareProfile):
        self.chip = chip
        self._model = PowerModel(chip)

    def query_power(self, busy_ticks: int, stall_ticks: int) -> PowerSample:
        """Sample average power for an execution; raises on unsupported
        chips."""
        if not self.chip.supports_power:
            raise PowerQueryUnsupportedError(self.chip.short_name)
        return PowerSample(self._model.average_power(busy_ticks, stall_ticks))
