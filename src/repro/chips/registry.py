"""Registry of the seven GPUs studied in the paper (Table 1).

Also provides ``sc-ref``, a sequentially consistent reference chip with
every weak-memory knob zeroed; it is used by the test suite to validate
the *logical* correctness of kernels and applications independently of
weak-memory effects.
"""

from __future__ import annotations

from ..errors import UnknownChipError
from .profile import HardwareProfile

# Turbulence multipliers indexed by the number of congested channels.
# Index 0 = no congestion (native leak only); the peak at exactly two hot
# channels is what makes a spread of 2 optimal on every chip (Tab. 2).
_TURBULENCE = (0.0, 0.55, 1.0, 0.55, 0.38, 0.28, 0.20, 0.15, 0.12)

_CHIPS: dict[str, HardwareProfile] = {}


def _register(profile: HardwareProfile) -> HardwareProfile:
    _CHIPS[profile.short_name] = profile
    return _CHIPS[profile.short_name]


GTX_980 = _register(
    HardwareProfile(
        name="GTX 980",
        short_name="980",
        architecture="Maxwell",
        released=2014,
        patch_size=64,
        n_channels=8,
        n_sms=16,
        max_resident_threads=2048 * 16,
        l2_words=512 * 1024,
        store_buffer_capacity=6,
        seed=980_001,
        reorder_base=1.0e-4,
        store_swap_leak=3.0e-3,
        store_store_min_distance=256,
        load_delay_base=3.0e-4,
        reorder_gain=0.125,
        load_delay_gain=0.28,
        latency_gain=5.0,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "ld", "ld", "ld", "st"),
        sequence_affinity=0.5,
        sensitivity_floor=0.35,
        app_bias={"sdk-red-nf": 0.04, "cub-scan-nf": 0.35, "tpo-tm": 0.5},
        clock_ghz=1.126,
        fence_stall_cycles=8,
        idle_watts=37.0,
        active_watts=165.0,
        supports_power=False,
    )
)

QUADRO_K5200 = _register(
    HardwareProfile(
        name="Quadro K5200",
        short_name="K5200",
        architecture="Kepler",
        released=2014,
        patch_size=32,
        n_channels=8,
        n_sms=12,
        max_resident_threads=2048 * 12,
        l2_words=384 * 1024,
        store_buffer_capacity=6,
        seed=5200_001,
        reorder_base=9.0e-4,
        store_swap_leak=0.0,
        store_store_min_distance=32,
        load_delay_base=4.0e-4,
        reorder_gain=0.15,
        load_delay_gain=0.33,
        latency_gain=6.0,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "ld", "ld", "st", "ld"),
        sequence_affinity=0.5,
        sensitivity_floor=0.35,
        app_bias={"cub-scan-nf": 1.4},
        clock_ghz=0.771,
        fence_stall_cycles=12,
        idle_watts=42.0,
        active_watts=150.0,
        supports_power=True,
    )
)

GTX_TITAN = _register(
    HardwareProfile(
        name="GTX Titan",
        short_name="Titan",
        architecture="Kepler",
        released=2013,
        patch_size=32,
        n_channels=8,
        n_sms=14,
        max_resident_threads=2048 * 14,
        l2_words=384 * 1024,
        store_buffer_capacity=6,
        seed=7100_001,
        reorder_base=2.0e-4,
        store_swap_leak=0.0,
        store_store_min_distance=32,
        load_delay_base=5.0e-4,
        reorder_gain=0.185,
        load_delay_gain=0.4,
        latency_gain=6.5,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "st", "st", "ld"),
        sequence_affinity=0.5,
        sensitivity_floor=0.30,
        app_bias={"sdk-red-nf": 1.6, "ls-bh": 1.3, "ls-bh-nf": 1.3,
                  "cub-scan-nf": 1.6},
        clock_ghz=0.837,
        fence_stall_cycles=12,
        idle_watts=45.0,
        active_watts=190.0,
        supports_power=True,
    )
)

TESLA_K20 = _register(
    HardwareProfile(
        name="Tesla K20",
        short_name="K20",
        architecture="Kepler",
        released=2013,
        patch_size=32,
        n_channels=8,
        n_sms=13,
        max_resident_threads=2048 * 13,
        l2_words=320 * 1024,
        store_buffer_capacity=6,
        seed=2000_001,
        reorder_base=1.5e-4,
        store_swap_leak=0.0,
        store_store_min_distance=32,
        load_delay_base=4.0e-4,
        reorder_gain=0.16,
        load_delay_gain=0.35,
        latency_gain=6.0,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "st", "st", "ld"),
        sequence_affinity=0.5,
        sensitivity_floor=0.30,
        app_bias={"ls-bh-nf": 1.2},
        clock_ghz=0.706,
        fence_stall_cycles=14,
        idle_watts=44.0,
        active_watts=170.0,
        supports_power=True,
    )
)

GTX_770 = _register(
    HardwareProfile(
        name="GTX 770",
        short_name="770",
        architecture="Kepler",
        released=2013,
        patch_size=32,
        n_channels=8,
        n_sms=8,
        max_resident_threads=2048 * 8,
        l2_words=128 * 1024,
        store_buffer_capacity=5,
        seed=770_001,
        reorder_base=1.3e-3,
        store_swap_leak=0.0,
        store_store_min_distance=32,
        load_delay_base=9.0e-4,
        reorder_gain=0.13,
        load_delay_gain=0.3,
        latency_gain=5.5,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("st", "st", "ld", "ld"),
        sequence_affinity=0.5,
        sensitivity_floor=0.35,
        app_bias={"cbe-ht": 1.8, "sdk-red-nf": 0.12},
        clock_ghz=1.046,
        fence_stall_cycles=20,
        idle_watts=35.0,
        active_watts=185.0,
        supports_power=False,
    )
)

TESLA_C2075 = _register(
    HardwareProfile(
        name="Tesla C2075",
        short_name="C2075",
        architecture="Fermi",
        released=2011,
        patch_size=64,
        n_channels=6,
        n_sms=14,
        max_resident_threads=1536 * 14,
        l2_words=192 * 1024,
        store_buffer_capacity=4,
        seed=2075_001,
        reorder_base=3.0e-4,
        store_swap_leak=0.0,
        store_store_min_distance=64,
        load_delay_base=6.0e-4,
        reorder_gain=0.14,
        load_delay_gain=0.33,
        latency_gain=7.0,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "st"),
        sequence_affinity=0.5,
        sensitivity_floor=0.30,
        app_bias={"ls-bh": 1.5, "cbe-ht": 1.3},
        clock_ghz=0.575,
        fence_stall_cycles=40,
        idle_watts=78.0,
        active_watts=215.0,
        supports_power=True,
    )
)

TESLA_C2050 = _register(
    HardwareProfile(
        name="Tesla C2050",
        short_name="C2050",
        architecture="Fermi",
        released=2010,
        patch_size=64,
        n_channels=6,
        n_sms=14,
        max_resident_threads=1536 * 14,
        l2_words=192 * 1024,
        store_buffer_capacity=4,
        seed=2050_001,
        reorder_base=2.5e-4,
        store_swap_leak=0.0,
        store_store_min_distance=64,
        load_delay_base=5.0e-4,
        reorder_gain=0.13,
        load_delay_gain=0.31,
        latency_gain=7.0,
        cross_channel_weight=0.4,
        pressure_threshold=0.25,
        turbulence_factors=_TURBULENCE,
        best_sequence=("ld", "st"),
        sequence_affinity=0.5,
        sensitivity_floor=0.30,
        app_bias={"cbe-ht": 1.3},
        clock_ghz=0.575,
        fence_stall_cycles=40,
        idle_watts=76.0,
        active_watts=210.0,
        supports_power=False,
    )
)

#: Sequentially consistent reference chip: every weak knob is zero, so any
#: post-condition failure on it indicates a logic bug, not a memory bug.
SC_REFERENCE = _register(
    HardwareProfile(
        name="SC reference",
        short_name="sc-ref",
        architecture="Reference",
        released=0,
        patch_size=32,
        n_channels=8,
        n_sms=8,
        max_resident_threads=2048 * 8,
        l2_words=128 * 1024,
        store_buffer_capacity=1,
        seed=1,
        reorder_base=0.0,
        store_swap_leak=0.0,
        store_store_min_distance=32,
        load_delay_base=0.0,
        reorder_gain=0.0,
        load_delay_gain=0.0,
        latency_gain=0.0,
        cross_channel_weight=0.0,
        pressure_threshold=0.25,
        turbulence_factors=(0.0,) * 9,
        best_sequence=("ld", "st"),
        sequence_affinity=0.0,
        sensitivity_floor=1.1,
        clock_ghz=1.0,
        fence_stall_cycles=1,
        idle_watts=30.0,
        active_watts=100.0,
        supports_power=False,
    )
)

#: Chip order used throughout the paper's tables (newest architecture
#: first, then by release date).
CHIP_ORDER = ("980", "K5200", "Titan", "K20", "770", "C2075", "C2050")


def get_chip(short_name: str) -> HardwareProfile:
    """Look up a chip by its short name (e.g. ``"K20"``)."""
    try:
        return _CHIPS[short_name]
    except KeyError:
        raise UnknownChipError(short_name, sorted(_CHIPS)) from None


def all_chips(include_reference: bool = False) -> list[HardwareProfile]:
    """The studied chips in Table 1 order (optionally plus ``sc-ref``)."""
    chips = [_CHIPS[name] for name in CHIP_ORDER]
    if include_reference:
        chips.append(SC_REFERENCE)
    return chips


def table1_rows() -> list[dict[str, object]]:
    """Rows of the paper's Table 1."""
    return [
        {
            "chip": chip.name,
            "architecture": chip.architecture,
            "short name": chip.short_name,
            "released": chip.released,
        }
        for chip in all_chips()
    ]
